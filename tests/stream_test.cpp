// Streaming telemetry tests (obs/stream, DESIGN.md "Streaming telemetry"):
//   - window splitting: serialization intervals crossing the window
//     boundary carry over exactly (multi-window spans included)
//   - differential: the bounded windowed rollup reproduces a
//     full-resolution TimeSeries' per-bin sums/counts on short runs, and
//     conserves exact totals through cascades into the ancient fold
//   - lead-time matcher: open before onset -> positive lead, onset before
//     open -> negative, no onset -> no samples, ACKs match their data
//     flow's opens, merge() equals a single-pass instance
//   - scenario integration: attached runs leave ScenarioResults untouched
//     (zero event-count drift), NDJSON is byte-identical across repeats
//     and scheduler backends and every line parses, per-link totals equal
//     NetTelemetry's, and the hotspot fixture yields a positive median
//     prediction lead
//   - bounded memory: memory_bytes() is flat over sim time while the
//     full-resolution series grows; hooks + roll are allocation-free in
//     steady state (operator-new interposer)
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "experiment/scenario.hpp"
#include "metrics/time_series.hpp"
#include "net/packet.hpp"
#include "obs/json.hpp"
#include "obs/stream.hpp"
#include "obs/telemetry.hpp"
#include "routing/oblivious.hpp"
#include "test_util.hpp"

namespace prdrb {
namespace {

using obs::NetTelemetry;
using obs::StreamConfig;
using obs::StreamTelemetry;
using Class = StreamTelemetry::TrafficClass;
using test::Harness;

Packet data_packet(NodeId src, NodeId dst) {
  Packet p;
  p.type = PacketType::kData;
  p.source = src;
  p.destination = dst;
  p.size_bytes = 1024;
  return p;
}

/// 2x2 mesh shape: enough links for the rollup/lead unit tests without
/// paying for a real workload.
Harness small_harness() {
  return Harness::make<Mesh2D>(NetConfig{}, new DeterministicPolicy, 2, 2);
}

// ---------------------------------------------------------------------------
// Window splitting and carry

TEST(StreamRollup, SerializationSplitsAtWindowBoundaryWithCarry) {
  auto h = small_harness();
  StreamConfig cfg;
  cfg.window_s = 1e-3;
  StreamTelemetry st(cfg);
  st.bind(*h.net);
  ASSERT_GT(st.num_links(), 0u);

  // 0.3 ms of serialization starting 0.1 ms before the boundary: 0.1 ms in
  // window 0, 0.2 ms carried into window 1.
  st.on_transmit(0, 0, data_packet(0, 1), 0.9e-3, 0.3e-3);
  st.roll(1e-3);
  st.roll(2e-3);
  const auto layout = st.window_layout();
  ASSERT_EQ(layout.size(), 2u);
  EXPECT_NEAR(st.window_at(0, 0, 0).busy, 0.1e-3, 1e-15);
  EXPECT_NEAR(st.window_at(0, 0, 1).busy, 0.2e-3, 1e-15);
  // The packet is counted once, in its starting window.
  EXPECT_EQ(st.window_at(0, 0, 0).packets, 1u);
  EXPECT_EQ(st.window_at(0, 0, 1).packets, 0u);
  EXPECT_DOUBLE_EQ(st.link_busy_seconds(0, 0), 0.3e-3);
  EXPECT_EQ(st.link_packets(0, 0), 1u);
}

TEST(StreamRollup, CarrySpansMultipleWindows) {
  auto h = small_harness();
  StreamConfig cfg;
  cfg.window_s = 1e-3;
  StreamTelemetry st(cfg);
  st.bind(*h.net);

  // 2.3 ms starting mid-window: 0.5 ms in window 0, a full window 1, then
  // 0.8 ms in window 2 — the carry drains one window's worth per roll.
  st.on_transmit(0, 0, data_packet(0, 1), 0.5e-3, 2.3e-3);
  st.roll(1e-3);
  st.roll(2e-3);
  st.roll(3e-3);
  EXPECT_NEAR(st.window_at(0, 0, 0).busy, 0.5e-3, 1e-15);
  EXPECT_NEAR(st.window_at(0, 0, 1).busy, 1e-3, 1e-15);
  EXPECT_NEAR(st.window_at(0, 0, 2).busy, 0.8e-3, 1e-15);
  EXPECT_DOUBLE_EQ(st.link_busy_seconds(0, 0), 2.3e-3);
}

// ---------------------------------------------------------------------------
// Differential: windowed rollup vs full-resolution TimeSeries

TEST(StreamRollup, RollupMatchesFullResolutionTimeSeries) {
  auto h = small_harness();
  StreamConfig cfg;
  cfg.window_s = 1e-3;
  cfg.ring_windows = 4;
  cfg.rollup_levels = 2;
  StreamTelemetry st(cfg);
  st.bind(*h.net);
  TimeSeries ts(1e-3);  // the unbounded reference NetTelemetry would keep

  // 10 windows of varying load on link (0,0), every transmission inside
  // its window, mirrored into the full-resolution series.
  const int kWindows = 10;
  std::vector<std::uint32_t> stalls_per_window;
  for (int w = 0; w < kWindows; ++w) {
    const int n = 1 + (w % 3);
    for (int k = 0; k < n; ++k) {
      const SimTime start = w * 1e-3 + k * 0.2e-3;
      st.on_transmit(0, 0, data_packet(0, 1), start, 0.05e-3);
      ts.add(start, 0.05e-3);
    }
    const std::uint32_t stalls = static_cast<std::uint32_t>(w % 2);
    for (std::uint32_t s = 0; s < stalls; ++s) {
      st.on_credit_stall(0, 0, w * 1e-3 + 0.9e-3);
    }
    stalls_per_window.push_back(stalls);
    st.roll((w + 1) * 1e-3);
  }
  EXPECT_EQ(st.windows_rolled(), static_cast<std::uint64_t>(kWindows));

  // 10 windows exceed the level-0 ring (4), so the layout mixes
  // resolutions — but every view must equal the sum of the reference
  // series' bins it covers, for means*counts, counts and stalls alike.
  const auto layout = st.window_layout();
  ASSERT_FALSE(layout.empty());
  EXPECT_EQ(layout.front().start, 0u) << "nothing folded to ancient yet";
  std::uint64_t covered = 0;
  for (std::size_t v = 0; v < layout.size(); ++v) {
    const auto& view = layout[v];
    double ref_busy = 0;
    std::uint64_t ref_packets = 0;
    std::uint32_t ref_stalls = 0;
    for (std::uint64_t b = view.start; b < view.start + view.span; ++b) {
      ref_busy += ts.bin_mean(b) * static_cast<double>(ts.bin_count(b));
      ref_packets += ts.bin_count(b);
      ref_stalls += stalls_per_window[b];
    }
    const auto agg = st.window_at(0, 0, v);
    EXPECT_NEAR(agg.busy, ref_busy, 1e-15) << "view " << v;
    EXPECT_EQ(agg.packets, ref_packets) << "view " << v;
    EXPECT_EQ(agg.stalls, ref_stalls) << "view " << v;
    covered += view.span;
  }
  EXPECT_EQ(covered, static_cast<std::uint64_t>(kWindows));
  EXPECT_EQ(st.ancient(0, 0).packets, 0u);
}

TEST(StreamRollup, AncientFoldConservesExactTotals) {
  auto h = small_harness();
  StreamConfig cfg;
  cfg.window_s = 1e-3;
  cfg.ring_windows = 2;  // tiny budget: 2 + 2x2 = 6 base windows retained
  cfg.rollup_levels = 1;
  StreamTelemetry st(cfg);
  st.bind(*h.net);
  TimeSeries ts(1e-3);

  const int kWindows = 20;
  for (int w = 0; w < kWindows; ++w) {
    const SimTime start = w * 1e-3 + 0.25e-3;
    const SimTime ser = (1 + w % 4) * 0.1e-3;
    st.on_transmit(0, 0, data_packet(0, 1), start, ser);
    ts.add(start, ser);
    st.roll((w + 1) * 1e-3);
  }

  const auto layout = st.window_layout();
  ASSERT_FALSE(layout.empty());
  // Everything older than the retained views lives in the ancient fold;
  // its totals must equal the reference series over [0, first view).
  const std::uint64_t ancient_windows = layout.front().start;
  EXPECT_GT(ancient_windows, 0u) << "20 windows must overflow a 6-window "
                                    "budget";
  double ref_busy = 0;
  std::uint64_t ref_packets = 0;
  for (std::uint64_t b = 0; b < ancient_windows; ++b) {
    ref_busy += ts.bin_mean(b) * static_cast<double>(ts.bin_count(b));
    ref_packets += ts.bin_count(b);
  }
  const auto anc = st.ancient(0, 0);
  EXPECT_NEAR(anc.busy, ref_busy, 1e-15);
  EXPECT_EQ(anc.packets, ref_packets);

  // Ancient + retained views == cumulative totals, exactly.
  double views_busy = anc.busy;
  std::uint64_t views_packets = anc.packets;
  std::uint64_t covered = ancient_windows;
  for (std::size_t v = 0; v < layout.size(); ++v) {
    views_busy += st.window_at(0, 0, v).busy;
    views_packets += st.window_at(0, 0, v).packets;
    covered += layout[v].span;
  }
  EXPECT_EQ(covered, static_cast<std::uint64_t>(kWindows));
  EXPECT_NEAR(views_busy, st.link_busy_seconds(0, 0), 1e-15);
  EXPECT_EQ(views_packets, st.link_packets(0, 0));
}

// ---------------------------------------------------------------------------
// Lead-time matcher (direct hook calls)

/// Lead-test config: EWMA == last window's utilization, so one saturated
/// window fires the onset and one idle window re-arms the detector.
StreamConfig lead_config() {
  StreamConfig cfg;
  cfg.window_s = 1e-3;
  cfg.ewma_alpha = 1.0;
  cfg.onset_threshold = 0.7;
  cfg.onset_clear = 0.5;
  return cfg;
}

TEST(StreamLead, OpenBeforeOnsetYieldsPositiveLead) {
  auto h = small_harness();
  StreamTelemetry st(lead_config());
  st.bind(*h.net);

  // The predictive engine opens (1,2) at 0.2 ms; the link the flow rides
  // saturates at the 1 ms window close: lead = +0.8 ms.
  st.on_metapath_open(1, 2, 2, /*predictive=*/true, 0.2e-3);
  st.on_transmit(0, 0, data_packet(1, 2), 0, 1e-3);
  st.roll(1e-3);
  EXPECT_EQ(st.onsets(), 1u);
  EXPECT_EQ(st.opens(true), 1u);
  ASSERT_EQ(st.lead_count(Class::kData, true), 1u);
  EXPECT_EQ(st.lead_count(Class::kData, false), 0u);
  const double median = st.lead_median(Class::kData);
  EXPECT_GE(median, 0.8e-3);
  EXPECT_LE(median, 0.8e-3 * 1.34);  // log-bucket upper bound

  // The open was consumed: a later onset on the same (still-open) flow
  // must not mint a second sample. Idle window re-arms, saturated window
  // fires again.
  st.on_transmit(0, 0, data_packet(1, 2), 1e-3, 0.1e-3);
  st.roll(2e-3);  // u = 0.1: re-armed
  st.on_transmit(0, 0, data_packet(1, 2), 2e-3, 1e-3);
  st.roll(3e-3);
  EXPECT_EQ(st.onsets(), 2u);
  EXPECT_EQ(st.lead_count(Class::kData, true), 1u);
}

TEST(StreamLead, OnsetBeforeOpenYieldsNegativeLead) {
  auto h = small_harness();
  StreamTelemetry st(lead_config());
  st.bind(*h.net);

  // Link saturates with no metapath open: the onset goes pending and the
  // late reactive open 0.5 ms later lands in the negative histogram.
  st.on_transmit(0, 0, data_packet(1, 2), 0, 1e-3);
  st.roll(1e-3);
  EXPECT_EQ(st.onsets(), 1u);
  EXPECT_EQ(st.lead_count(Class::kData, true), 0u);
  EXPECT_EQ(st.lead_count(Class::kData, false), 0u) << "no open yet";
  st.on_metapath_open(1, 2, 2, /*predictive=*/false, 1.5e-3);
  EXPECT_EQ(st.opens(false), 1u);
  ASSERT_EQ(st.lead_count(Class::kData, false), 1u);
  const double median = st.lead_median(Class::kData);
  EXPECT_LE(median, -0.5e-3);
  EXPECT_GE(median, -0.5e-3 * 1.34);
}

TEST(StreamLead, AckTrafficMatchesItsDataFlowsOpens) {
  auto h = small_harness();
  StreamTelemetry st(lead_config());
  st.bind(*h.net);

  // An ACK for flow (1,2) travels 2 -> 1; it must match the metapath open
  // keyed on the DATA flow orientation, but sample into the ACK class.
  Packet ack = data_packet(2, 1);
  ack.type = PacketType::kAck;
  st.on_metapath_open(1, 2, 2, /*predictive=*/true, 0.1e-3);
  st.on_transmit(0, 0, ack, 0, 1e-3);
  st.roll(1e-3);
  EXPECT_EQ(st.lead_count(Class::kAck, true), 1u);
  EXPECT_EQ(st.lead_count(Class::kData, true), 0u);
  EXPECT_GT(st.lead_median(Class::kAck), 0.0);
}

TEST(StreamLead, NoOnsetMeansNoLeadSamples) {
  auto h = small_harness();
  StreamTelemetry st(lead_config());
  st.bind(*h.net);

  // Light load (30% utilization) never crosses the onset threshold: opens
  // and closes happen, but no lead sample is ever minted.
  st.on_metapath_open(1, 2, 2, true, 0.1e-3);
  for (int w = 0; w < 6; ++w) {
    st.on_transmit(0, 0, data_packet(1, 2), w * 1e-3, 0.3e-3);
    st.roll((w + 1) * 1e-3);
  }
  st.on_metapath_close(1, 2, 1, 6e-3);
  EXPECT_EQ(st.onsets(), 0u);
  for (Class cls : {Class::kData, Class::kAck, Class::kPredictiveAck}) {
    EXPECT_EQ(st.lead_count(cls, true), 0u);
    EXPECT_EQ(st.lead_count(cls, false), 0u);
    EXPECT_DOUBLE_EQ(st.lead_median(cls), 0.0);
  }
}

TEST(StreamLead, MergeMatchesSinglePass) {
  auto h = small_harness();
  // a sees flow (1,2) on link (0,0): predicted open, positive lead.
  // b sees flow (3,0) on link (0,1): late reactive open, negative lead.
  // single sees both interleaved, as one run would.
  StreamTelemetry a(lead_config()), b(lead_config()), single(lead_config());
  a.bind(*h.net);
  b.bind(*h.net);
  single.bind(*h.net);

  a.on_metapath_open(1, 2, 2, true, 0.2e-3);
  single.on_metapath_open(1, 2, 2, true, 0.2e-3);
  a.on_transmit(0, 0, data_packet(1, 2), 0, 1e-3);
  single.on_transmit(0, 0, data_packet(1, 2), 0, 1e-3);
  b.on_transmit(0, 1, data_packet(3, 0), 0, 1e-3);
  single.on_transmit(0, 1, data_packet(3, 0), 0, 1e-3);
  a.roll(1e-3);
  b.roll(1e-3);
  single.roll(1e-3);
  b.on_metapath_open(3, 0, 2, false, 1.6e-3);
  single.on_metapath_open(3, 0, 2, false, 1.6e-3);

  a.merge(b);
  EXPECT_EQ(a.onsets(), single.onsets());
  EXPECT_EQ(a.opens(true), single.opens(true));
  EXPECT_EQ(a.opens(false), single.opens(false));
  for (Class cls : {Class::kData, Class::kAck, Class::kPredictiveAck}) {
    for (bool positive : {true, false}) {
      const auto& merged = a.lead_histogram(cls, positive);
      const auto& ref = single.lead_histogram(cls, positive);
      ASSERT_EQ(merged.count(), ref.count());
      for (int bk = 0; bk < LatencyHistogram::kNumBuckets; ++bk) {
        ASSERT_EQ(merged.bucket_count(bk), ref.bucket_count(bk))
            << "bucket " << bk;
      }
    }
    EXPECT_DOUBLE_EQ(a.lead_median(cls), single.lead_median(cls));
  }
  EXPECT_DOUBLE_EQ(a.lead_median(Class::kData),
                   single.lead_median(Class::kData));
  // One positive (+0.8 ms) and one negative (-0.6 ms) sample: the lower
  // median is the negative one — the sign convention under test.
  EXPECT_LT(a.lead_median(Class::kData), 0.0);
}

// ---------------------------------------------------------------------------
// Scenario integration

ScenarioSpec contended_spec() {
  ScenarioSpec sc;
  sc.topology = "mesh-4x4";
  sc.synthetic().pattern = "uniform";
  sc.synthetic().rate_bps = 600e6;
  sc.synthetic().bursts = 2;
  sc.synthetic().burst_len = 0.5e-3;
  sc.synthetic().gap_len = 0.5e-3;
  sc.synthetic().duration = 2e-3;
  sc.seed = 11;
  return sc;
}

/// The hotspot fixture EXPERIMENTS.md uses for the lead-time recipe: long
/// enough (three 2 ms bursts) for the EWMA detector to confirm onsets.
ScenarioSpec hotspot_spec() {
  ScenarioSpec sc;
  sc.topology = "mesh-8x8";
  sc.synthetic().pattern = "hotspot-cross";
  sc.synthetic().rate_bps = 1200e6;
  sc.synthetic().duration = 12e-3;
  sc.synthetic().bursts = 3;
  sc.synthetic().burst_len = 2e-3;
  sc.synthetic().gap_len = 1e-3;
  sc.seed = 11;
  return sc;
}

TEST(StreamScenario, AttachedRunLeavesResultsUntouched) {
  // Baseline: the sampler chain is already active (full-resolution
  // telemetry at the stream's cadence). Adding the stream probe must not
  // move a single event — rolls ride the existing chain ticks.
  ScenarioSpec base = contended_spec();
  NetTelemetry tel_base(base.bin_width);
  base.sinks.telemetry = &tel_base;
  const ScenarioResult plain = run_scenario("pr-drb", base);

  ScenarioSpec spec = contended_spec();
  NetTelemetry tel(spec.bin_width);
  StreamTelemetry st;
  spec.sinks.telemetry = &tel;
  spec.sinks.stream = &st;
  const ScenarioResult observed = run_scenario("pr-drb", spec);
  // The headline fields are compared one by one so a drift names the
  // field instead of dumping raw bytes; the defaulted operator== then
  // covers the rest (exact doubles, full series).
  EXPECT_EQ(plain.events, observed.events) << "stream probe added events";
  EXPECT_EQ(plain.packets, observed.packets);
  EXPECT_DOUBLE_EQ(plain.global_latency, observed.global_latency);
  EXPECT_DOUBLE_EQ(plain.mean_latency, observed.mean_latency);
  EXPECT_DOUBLE_EQ(plain.delivery_ratio, observed.delivery_ratio);
  EXPECT_EQ(plain.series, observed.series);
  EXPECT_EQ(plain, observed);
  EXPECT_GT(st.windows_rolled(), 0u);
  EXPECT_FALSE(st.bound()) << "run must finalize and unbind the stream";

  // Against a BARE run (no sampler chain at all), only the chain's own
  // tick events may differ — every physical result stays bit-identical.
  const ScenarioResult bare = run_scenario("pr-drb", contended_spec());
  ScenarioResult masked = observed;
  masked.events = bare.events;
  EXPECT_EQ(bare, masked)
      << "sampler chain must observe, never perturb, the simulation";
}

TEST(StreamScenario, NdjsonByteIdenticalAcrossRepeatsAndBackends) {
  const auto run_with = [](SchedulerKind kind) {
    ScenarioSpec spec = contended_spec();
    spec.sched = kind;
    StreamTelemetry st;
    spec.sinks.stream = &st;
    run_scenario("pr-drb", spec);
    return st.ndjson();
  };
  const std::string heap1 = run_with(SchedulerKind::kBinaryHeap);
  const std::string heap2 = run_with(SchedulerKind::kBinaryHeap);
  const std::string cal = run_with(SchedulerKind::kCalendar);
  EXPECT_EQ(heap1, heap2) << "repeat runs must export identically";
  EXPECT_EQ(heap1, cal) << "scheduler backend must not leak into the stream";

  // Every NDJSON line is an intact document; the last is the summary.
  ASSERT_FALSE(heap1.empty());
  std::size_t pos = 0;
  std::string last;
  while (pos < heap1.size()) {
    const std::size_t nl = heap1.find('\n', pos);
    ASSERT_NE(nl, std::string::npos) << "stream must be newline-terminated";
    const std::string line = heap1.substr(pos, nl - pos);
    EXPECT_TRUE(obs::json_valid(line)) << line.substr(0, 120);
    last = line;
    pos = nl + 1;
  }
  const auto doc = obs::json_parse(last);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->string_at("schema"), "prdrb-stream-v1");
  EXPECT_EQ(doc->string_at("kind"), "summary");
  EXPECT_GT(doc->number_at("state_bytes"), 0.0);
}

TEST(StreamScenario, LinkTotalsEqualFullResolutionTelemetry) {
  ScenarioSpec spec = contended_spec();
  spec.bin_width = 1e-3;  // == the sampler cadence the stream windows ride
  NetTelemetry tel(spec.bin_width);
  StreamTelemetry st;
  spec.sinks.telemetry = &tel;
  spec.sinks.stream = &st;
  run_scenario("pr-drb", spec);

  // Both sinks fold the same hook calls in the same order, so per-link
  // busy-seconds and stall counts are bit-identical — the stream's
  // bounded windows lose resolution, never accounting.
  auto shape = Harness::make<Mesh2D>(NetConfig{}, new DeterministicPolicy,
                                     4, 4);
  std::size_t links = 0;
  double busy = 0;
  for (RouterId r = 0; r < 16; ++r) {
    const auto ports = shape.net->router(r).ports.size();
    for (std::size_t p = 0; p < ports; ++p) {
      const int port = static_cast<int>(p);
      EXPECT_DOUBLE_EQ(st.link_busy_seconds(r, port),
                       tel.link_busy_seconds(r, port))
          << "router " << r << " port " << port;
      EXPECT_EQ(st.link_stalls(r, port), tel.link_stalls(r, port))
          << "router " << r << " port " << port;
      busy += st.link_busy_seconds(r, port);
      ++links;
    }
  }
  EXPECT_EQ(st.num_links(), links) << "shape harness mirrors the run";
  EXPECT_GT(busy, 0.0) << "the contended spec must move traffic";
}

TEST(StreamScenario, HotspotRunYieldsPositiveMedianLead) {
  ScenarioSpec spec = hotspot_spec();
  StreamTelemetry st;
  spec.sinks.stream = &st;
  run_scenario("pr-drb", spec);

  // The paper's claim, end to end: under a sustained hotspot, PR-DRB's
  // metapaths open BEFORE the EWMA detector confirms congestion onsets,
  // so the median lead over data traffic is positive.
  EXPECT_GT(st.onsets(), 0u);
  EXPECT_GT(st.opens(true) + st.opens(false), 0u);
  ASSERT_GT(st.lead_count(Class::kData, true), 0u);
  EXPECT_GT(st.lead_median(Class::kData), 0.0);
}

// ---------------------------------------------------------------------------
// Bounded memory and allocation-freedom

TEST(StreamMemory, StateStaysFlatWhileFullResolutionGrows) {
  auto h = small_harness();
  StreamTelemetry st;
  st.bind(*h.net);
  NetTelemetry tel(1e-3);
  tel.bind(*h.net);

  const auto drive_to = [&](int windows, int from) {
    for (int w = from; w < windows; ++w) {
      st.on_transmit(0, 0, data_packet(0, 1), w * 1e-3, 0.4e-3);
      tel.on_transmit(0, 0, w * 1e-3, 0.4e-3);
      st.roll((w + 1) * 1e-3);
    }
  };
  drive_to(50, 0);
  const std::size_t at_50 = st.memory_bytes();
  drive_to(400, 50);
  const std::size_t at_400 = st.memory_bytes();
  // O(links x windows) vs O(links x sim-time): the stream's state gauge is
  // byte-for-byte flat over 8x the horizon; the full-resolution series
  // keeps growing a bin per window.
  EXPECT_EQ(at_400, at_50);
  EXPECT_GE(tel.link_busy_seconds(0, 0), 400 * 0.4e-3 - 1e-12);
  EXPECT_GE(tel.bins(), 400u);
}

TEST(Allocations, StreamHooksSteadyStateIsAllocationFree) {
  auto h = small_harness();
  StreamConfig cfg = lead_config();
  cfg.snapshot_every = 1u << 20;  // keep NDJSON emission out of the loop
  StreamTelemetry st(cfg);
  st.bind(*h.net);

  // Warm-up: create the flow-map nodes and recent-flow entries this
  // traffic will reuse, and run one full onset/re-arm cycle.
  const auto cycle = [&](int i) {
    const SimTime base = 2.0 * i * 1e-3;
    st.on_metapath_open(1, 2, 2, true, base + 0.1e-3);
    st.on_transmit(0, 0, data_packet(1, 2), base, 0.9e-3);
    st.on_credit_stall(0, 0, base + 0.5e-3);
    st.roll(base + 1e-3);  // u = 0.9: onset fires, positive lead minted
    st.roll(base + 2e-3);  // idle window: detector re-arms
    st.on_metapath_close(1, 2, 1, base + 2e-3);
  };
  cycle(0);

  test::AllocationScope scope;
  for (int i = 1; i <= 5000; ++i) cycle(i);
  EXPECT_EQ(scope.count(), 0u)
      << "stream hot-path hooks allocated in steady state";
  EXPECT_EQ(st.onsets(), 5001u);
  EXPECT_EQ(st.lead_count(Class::kData, true), 5001u);
}

}  // namespace
}  // namespace prdrb
