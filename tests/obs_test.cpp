// Observability subsystem tests (DESIGN.md "Observability"):
//   - obs/json: escaping, deterministic number formatting, validation
//   - obs/tracer: Chrome trace_event document shape, disabled/limit
//     behaviour, and the determinism contract (two identical seeded runs
//     produce byte-identical traces)
//   - obs/counters: register/sample/export round-trip, simulator-driven
//     sampling that still lets Simulator::run() drain
//   - experiment/manifest: schema + per-policy summary arithmetic
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "experiment/manifest.hpp"
#include "experiment/runner.hpp"
#include "experiment/scenario.hpp"
#include "obs/counters.hpp"
#include "obs/json.hpp"
#include "obs/tracer.hpp"
#include "sim/simulator.hpp"

namespace prdrb {
namespace {

using obs::Counter;
using obs::CounterRegistry;
using obs::CounterSampler;
using obs::JsonWriter;
using obs::Tracer;

// --- obs/json ---

TEST(ObsJson, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(obs::json_escape("plain"), "plain");
  EXPECT_EQ(obs::json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(obs::json_escape("x\ny\tz"), "x\\ny\\tz");
  EXPECT_EQ(obs::json_escape(std::string("nul\0byte", 8)), "nul\\u0000byte");
}

TEST(ObsJson, NumbersAreShortestRoundTripAndFinite) {
  EXPECT_EQ(obs::json_number(0.0), "0");
  EXPECT_EQ(obs::json_number(1.5), "1.5");
  EXPECT_EQ(obs::json_number(-3.0), "-3");
  // JSON has no inf/NaN: mapped to 0 rather than emitting invalid tokens.
  EXPECT_EQ(obs::json_number(std::numeric_limits<double>::infinity()), "0");
  EXPECT_EQ(obs::json_number(std::numeric_limits<double>::quiet_NaN()), "0");
}

TEST(ObsJson, WriterBuildsValidDocuments) {
  JsonWriter w;
  w.begin_object()
      .field("name", "trace \"x\"")
      .field("count", std::uint64_t{42})
      .field("ratio", 0.25)
      .field("ok", true)
      .key("list")
      .begin_array()
      .value(1)
      .value(2.5)
      .end_array()
      .end_object();
  EXPECT_TRUE(obs::json_valid(w.str())) << w.str();
  EXPECT_NE(w.str().find("\"count\":42"), std::string::npos);
}

TEST(ObsJson, RawNumberOrStringQuotesNonNumbers) {
  JsonWriter w;
  w.begin_object();
  w.key("a").raw_number_or_string("400000000");
  w.key("b").raw_number_or_string("1.5e-3");
  w.key("c").raw_number_or_string("mesh-8x8");
  w.key("d").raw_number_or_string("");
  w.end_object();
  EXPECT_TRUE(obs::json_valid(w.str())) << w.str();
  EXPECT_NE(w.str().find("\"a\":400000000"), std::string::npos);
  EXPECT_NE(w.str().find("\"b\":1.5e-3"), std::string::npos);
  EXPECT_NE(w.str().find("\"c\":\"mesh-8x8\""), std::string::npos);
}

TEST(ObsJson, ValidatorRejectsMalformedDocuments) {
  EXPECT_TRUE(obs::json_valid("{\"a\":[1,2,{\"b\":null}]}"));
  EXPECT_TRUE(obs::json_valid(" [true, false, -1.5e3] "));
  EXPECT_FALSE(obs::json_valid(""));
  EXPECT_FALSE(obs::json_valid("{"));
  EXPECT_FALSE(obs::json_valid("{\"a\":}"));
  EXPECT_FALSE(obs::json_valid("{\"a\":1,}"));
  EXPECT_FALSE(obs::json_valid("[1 2]"));
  EXPECT_FALSE(obs::json_valid("{\"a\":1} trailing"));
}

TEST(ObsJson, ParserBuildsNavigableDocuments) {
  const auto doc = obs::json_parse(
      "{\"schema\":\"t\",\"n\":-1.5e3,\"flag\":true,\"nil\":null,"
      "\"nested\":{\"deep\":{\"x\":7}},\"list\":[1,\"two\",false]}");
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  EXPECT_EQ(doc->string_at("schema"), "t");
  EXPECT_DOUBLE_EQ(doc->number_at("n"), -1500.0);
  ASSERT_NE(doc->find("flag"), nullptr);
  EXPECT_TRUE(doc->find("flag")->as_bool());
  EXPECT_TRUE(doc->find("nil")->is_null());
  // Dotted-path navigation with fallbacks instead of throws.
  EXPECT_DOUBLE_EQ(doc->number_at("nested.deep.x"), 7.0);
  EXPECT_DOUBLE_EQ(doc->number_at("nested.deep.missing", -1.0), -1.0);
  EXPECT_EQ(doc->find_path("nested.nope"), nullptr);
  const obs::JsonValue* list = doc->find("list");
  ASSERT_NE(list, nullptr);
  ASSERT_EQ(list->items().size(), 3u);
  EXPECT_EQ(list->items()[1].as_string(), "two");
  // Member order is preserved for deterministic re-emission.
  EXPECT_EQ(doc->members().front().first, "schema");
}

TEST(ObsJson, ParserDecodesEscapesIncludingSurrogatePairs) {
  const auto doc = obs::json_parse(
      "{\"s\":\"a\\\"b\\\\c\\n\",\"u\":\"\\u00e9\",\"sp\":\"\\ud83d\\ude00\"}");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->string_at("s"), "a\"b\\c\n");
  EXPECT_EQ(doc->string_at("u"), "\xC3\xA9");          // é in UTF-8
  EXPECT_EQ(doc->string_at("sp"), "\xF0\x9F\x98\x80"); // 😀 in UTF-8
  // Lone surrogates are malformed, not silently emitted.
  EXPECT_FALSE(obs::json_parse("\"\\ud83d\"").has_value());
  EXPECT_FALSE(obs::json_parse("\"\\ude00\"").has_value());
  EXPECT_FALSE(obs::json_parse("{\"a\":1,}").has_value());
}

// --- obs/tracer ---

TEST(Tracer, EmitsChromeTraceDocument) {
  Tracer t;
  t.on_message_injected(3, 9, 1024, 1e-6);
  Packet p;
  p.source = 3;
  p.destination = 9;
  t.on_packet_forwarded(p, 5, 2e-6);
  t.on_packet_delivered(p, 4e-6);
  t.congestion_detected(5, 1, 6e-6, 4, 3e-6);
  t.predictive_ack(5, 3, 3.5e-6);
  t.metapath_open(3, 9, 2, 4e-6);
  t.solution_hit(3, 9, 3, 5e-6);
  t.solution_miss(3, 10, 5e-6);
  t.solution_save(3, 9, 3, 6e-6);
  t.metapath_close(3, 9, 1, 7e-6);
  EXPECT_EQ(t.events(), 10u);
  EXPECT_EQ(t.dropped(), 0u);

  const std::string doc = t.to_json();
  EXPECT_TRUE(obs::json_valid(doc)) << doc;
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"displayTimeUnit\""), std::string::npos);
  // One event of each family, on its documented process.
  for (const char* name :
       {"inject", "hop", "deliver", "congestion", "predictive-ack", "mp-open",
        "mp-close", "sdb-hit", "sdb-miss", "sdb-save"}) {
    EXPECT_NE(doc.find("\"name\":\"" + std::string(name) + "\""),
              std::string::npos)
        << name;
  }
  // process_name metadata makes the Perfetto tracks readable.
  EXPECT_NE(doc.find("process_name"), std::string::npos);

  t.clear();
  EXPECT_EQ(t.events(), 0u);
  EXPECT_TRUE(obs::json_valid(t.to_json()));
}

TEST(Tracer, DisabledRecordsNothing) {
  Tracer t(/*enabled=*/false);
  t.on_message_injected(0, 1, 64, 0);
  t.metapath_open(0, 1, 2, 0);
  EXPECT_EQ(t.events(), 0u);
  t.set_enabled(true);
  t.on_message_injected(0, 1, 64, 0);
  EXPECT_EQ(t.events(), 1u);
}

TEST(Tracer, MarkerAndLabelAreEscapedIntoValidJson) {
  // Regression test: marker/label text is caller-controlled; quotes,
  // backslashes and control characters must be escaped, not concatenated
  // raw into the document.
  Tracer t;
  t.set_label("run \"A\\B\"\nphase");
  EXPECT_EQ(t.label(), "run \"A\\B\"\nphase");
  t.marker("watchdog \"fired\"\t<>", 1e-6);
  EXPECT_EQ(t.events(), 1u);
  const std::string doc = t.to_json();
  EXPECT_TRUE(obs::json_valid(doc)) << doc;
  EXPECT_NE(doc.find("\"label\""), std::string::npos);
  EXPECT_NE(doc.find("watchdog \\\"fired\\\""), std::string::npos);

  // Disabled tracers record no markers.
  Tracer off(/*enabled=*/false);
  off.marker("x", 0);
  EXPECT_EQ(off.events(), 0u);
}

TEST(Tracer, LimitDropsDeterministically) {
  Tracer t;
  t.set_limit(3);
  for (int i = 0; i < 8; ++i) t.on_message_injected(i, i + 1, 64, i * 1e-6);
  // events() counts everything observed; stored = events() - dropped().
  EXPECT_EQ(t.events(), 8u);
  EXPECT_EQ(t.dropped(), 5u);
  EXPECT_TRUE(obs::json_valid(t.to_json()));
}

/// The acceptance contract: a seeded serial run traced twice produces
/// byte-identical Chrome-trace JSON.
TEST(Tracer, SeededRunsProduceByteIdenticalTraces) {
  const auto traced_run = [] {
    ScenarioSpec sc;
    sc.topology = "mesh-8x8";
    sc.synthetic().pattern = "hotspot-cross";
    sc.synthetic().rate_bps = 1200e6;
    sc.synthetic().duration = 3e-3;
    sc.synthetic().bursts = 1;
    sc.synthetic().burst_len = 2e-3;
    sc.seed = 11;
    Tracer tracer;
    sc.sinks.tracer = &tracer;
    run_synthetic("pr-drb", sc);
    return tracer.to_json();
  };
  const std::string a = traced_run();
  const std::string b = traced_run();
  ASSERT_GT(a.size(), 2u);
  EXPECT_TRUE(obs::json_valid(a));
  EXPECT_EQ(a, b);  // byte-identical
  // The hot-spot run exercises the control plane, not just the lifecycle.
  EXPECT_NE(a.find("\"name\":\"congestion\""), std::string::npos);
  EXPECT_NE(a.find("\"name\":\"mp-open\""), std::string::npos);
}

// --- obs/counters ---

TEST(Counters, RegisterSampleExportRoundTrip) {
  CounterRegistry reg(1e-3);
  Counter& c = reg.counter("net.link.packets");
  double g = 1.5;
  reg.gauge("net.queue.bytes", [&g] { return g; });
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.names(), (std::vector<std::string>{"net.link.packets",
                                                   "net.queue.bytes"}));
  // Re-registering returns the same cell.
  EXPECT_EQ(&reg.counter("net.link.packets"), &c);
  EXPECT_EQ(reg.size(), 2u);

  c.add(3);
  reg.sample(0.5e-3);
  c.increment();
  g = 2.5;
  reg.sample(1.5e-3);
  EXPECT_EQ(reg.samples_taken(), 2u);
  EXPECT_DOUBLE_EQ(reg.current("net.link.packets"), 4.0);
  EXPECT_DOUBLE_EQ(reg.current("net.queue.bytes"), 2.5);
  EXPECT_DOUBLE_EQ(reg.current("no.such.metric"), 0.0);

  const TimeSeries* s = reg.series("net.link.packets");
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->bin_mean(0), 3.0);
  EXPECT_DOUBLE_EQ(s->bin_mean(1), 4.0);
  EXPECT_EQ(reg.series("no.such.metric"), nullptr);

  std::ostringstream csv;
  reg.write_csv(csv);
  EXPECT_NE(csv.str().find("name,kind,bin_time_s,mean,count"),
            std::string::npos);
  EXPECT_NE(csv.str().find("net.link.packets,counter,"), std::string::npos);
  EXPECT_NE(csv.str().find("net.queue.bytes,gauge,"), std::string::npos);

  const std::string json = reg.to_json();
  EXPECT_TRUE(obs::json_valid(json)) << json;
  EXPECT_NE(json.find("prdrb-counters-v1"), std::string::npos);
  EXPECT_NE(json.find("net.link.packets"), std::string::npos);
}

TEST(Counters, SamplerFollowsSimClockAndLetsTheRunDrain) {
  Simulator sim;
  CounterRegistry reg(1e-3);
  Counter& c = reg.counter("test.events");
  for (int i = 1; i <= 5; ++i) {
    sim.schedule_at(i * 1e-3, [&c] { c.increment(); });
  }
  CounterSampler sampler(sim, reg);
  sampler.start(1e-3);
  sim.run();  // must terminate: the sampler stops when the queue drains
  EXPECT_GE(reg.samples_taken(), 5u);
  EXPECT_DOUBLE_EQ(reg.current("test.events"), 5.0);
}

/// End-of-run freeze contract: when the run finishes, gauges are evaluated
/// one final time and frozen, so the registry reports end-of-run values
/// (not the last periodic sample) and stays safe to query after the
/// run-local probes are gone — and the whole export is deterministic, at
/// any sweep worker count.
TEST(Counters, EndOfRunFreezeCapturesFinalValuesDeterministically) {
  const auto probe = [] {
    ScenarioSpec sc;
    sc.topology = "mesh-8x8";
    sc.synthetic().pattern = "hotspot-cross";
    sc.synthetic().rate_bps = 1200e6;
    sc.synthetic().duration = 3e-3;
    sc.synthetic().bursts = 1;
    sc.synthetic().burst_len = 2e-3;
    sc.seed = 11;
    auto reg = std::make_unique<CounterRegistry>(sc.bin_width);
    sc.sinks.counters = reg.get();
    sc.sinks.sample_interval = 0.7e-3;
    const ScenarioResult r = run_synthetic("pr-drb", sc);
    return std::pair<ScenarioResult, std::unique_ptr<CounterRegistry>>(
        r, std::move(reg));
  };
  const auto [r1, reg1] = probe();
  // The frozen sim.events gauge equals the run's final event count — the
  // freeze sampled it once more after the queue drained, not at the last
  // periodic tick.
  EXPECT_DOUBLE_EQ(reg1->current("sim.events"),
                   static_cast<double>(r1.events));
  EXPECT_GT(reg1->samples_taken(), 0u);

  const auto [r2, reg2] = probe();
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(reg1->samples_taken(), reg2->samples_taken());
  EXPECT_EQ(reg1->to_json(), reg2->to_json());  // byte-identical

  // The sweep executor's worker count is irrelevant to a serial probe.
  const int saved = default_jobs();
  set_default_jobs(8);
  const auto [r3, reg3] = probe();
  set_default_jobs(saved);
  EXPECT_EQ(reg1->to_json(), reg3->to_json());
}

/// End-to-end: a scenario run with a counter sink registers the documented
/// network/routing/sim metrics and samples them.
TEST(Counters, ScenarioRunPopulatesRegistry) {
  ScenarioSpec sc;
  sc.topology = "mesh-8x8";
  sc.synthetic().pattern = "hotspot-cross";
  sc.synthetic().rate_bps = 1200e6;
  sc.synthetic().duration = 3e-3;
  sc.synthetic().bursts = 1;
  sc.synthetic().burst_len = 2e-3;
  sc.seed = 11;
  CounterRegistry reg(sc.bin_width);
  sc.sinks.counters = &reg;
  sc.sinks.sample_interval = 0.5e-3;
  const ScenarioResult r = run_synthetic("pr-drb", sc);
  EXPECT_GT(r.packets, 0u);
  EXPECT_GT(r.events, 0u);

  for (const char* name :
       {"net.link.packets", "net.link.bytes", "net.ack.bytes",
        "net.header.overhead_bytes", "net.credit.stalls", "sim.events",
        "sim.sched.rebuilds", "sim.sched.tie_chain_pops",
        "sim.sched.direct_search_fallbacks", "sim.sched.tombstones",
        "routing.expansions", "routing.sdb.installs", "routing.sdb.lookups",
        "routing.sdb.hits", "routing.sdb.empty_probes"}) {
    EXPECT_NE(reg.series(name), nullptr) << name;
  }
  EXPECT_GT(reg.samples_taken(), 0u);
  EXPECT_GT(reg.current("net.link.packets"), 0.0);
  EXPECT_GT(reg.current("net.link.bytes"), 0.0);
  // Events gauge was sampled up to the end of the run.
  EXPECT_GT(reg.current("sim.events"), 0.0);
  EXPECT_TRUE(obs::json_valid(reg.to_json()));
}

TEST(Counters, WriteFilePicksFormatByExtension) {
  CounterRegistry reg;
  reg.counter("a.b").add(2);
  reg.sample(0);
  const std::string csv_path = ::testing::TempDir() + "obs_counters.csv";
  const std::string json_path = ::testing::TempDir() + "obs_counters.json";
  ASSERT_TRUE(reg.write_file(csv_path));
  ASSERT_TRUE(reg.write_file(json_path));
  std::ifstream csv(csv_path);
  std::string first;
  std::getline(csv, first);
  EXPECT_EQ(first, "name,kind,bin_time_s,mean,count");
  std::ifstream json(json_path);
  std::stringstream body;
  body << json.rdbuf();
  EXPECT_TRUE(obs::json_valid(body.str()));
  std::remove(csv_path.c_str());
  std::remove(json_path.c_str());
}

// --- experiment/manifest ---

TEST(Manifest, SchemaAndPolicySummaries) {
  RunManifest m("obs_test");
  m.set_seed(11);
  m.set_jobs(4);
  m.set_wall_seconds(2.0);
  m.add_config("topology", "mesh-8x8");
  m.add_config("rate_bps", 400e6);
  m.add_config("seeds", std::int64_t{3});

  ScenarioResult a;
  a.policy = "drb";
  a.global_latency = 10e-6;
  a.delivery_ratio = 1.0;
  a.packets = 100;
  a.events = 1000;
  ScenarioResult b = a;
  b.global_latency = 20e-6;
  b.packets = 50;
  b.events = 500;
  ScenarioResult c;
  c.policy = "pr-drb";
  c.global_latency = 5e-6;
  c.delivery_ratio = 1.0;
  c.packets = 100;
  c.events = 700;
  m.add_result(a);
  m.add_result(b);
  m.add_result(c);

  EXPECT_EQ(m.results_recorded(), 3u);
  EXPECT_EQ(m.total_events(), 2200u);
  EXPECT_DOUBLE_EQ(m.events_per_sec(), 1100.0);

  const std::string doc = m.to_json();
  EXPECT_TRUE(obs::json_valid(doc)) << doc;
  EXPECT_NE(doc.find("\"schema\":\"prdrb-manifest-v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"tool\":\"obs_test\""), std::string::npos);
  EXPECT_NE(doc.find("\"seed\":11"), std::string::npos);
  EXPECT_NE(doc.find("\"jobs\":4"), std::string::npos);
  // Config numbers stay bare, strings stay quoted.
  EXPECT_NE(doc.find("\"topology\":\"mesh-8x8\""), std::string::npos);
  EXPECT_NE(doc.find("\"seeds\":3"), std::string::npos);
  // drb: mean latency of 10us and 20us -> 15us; packets summed.
  EXPECT_NE(doc.find("\"policy\":\"drb\""), std::string::npos);
  EXPECT_NE(doc.find("\"global_latency_us\":15"), std::string::npos);
  EXPECT_NE(doc.find("\"policy\":\"pr-drb\""), std::string::npos);
}

TEST(Manifest, WriteFileProducesParsableJson) {
  RunManifest m("obs_test");
  ScenarioResult r;
  r.policy = "drb";
  r.events = 10;
  m.add_result(r);
  const std::string path = ::testing::TempDir() + "obs_manifest.json";
  ASSERT_TRUE(m.write_file(path));
  std::ifstream in(path);
  std::stringstream body;
  body << in.rdbuf();
  EXPECT_TRUE(obs::json_valid(body.str()));
  EXPECT_NE(body.str().find("prdrb-manifest-v1"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace prdrb
