#include <gtest/gtest.h>

#include <limits>

#include "metrics/collector.hpp"
#include "metrics/latency_map.hpp"
#include "metrics/latency_stats.hpp"
#include "metrics/time_series.hpp"

namespace prdrb {
namespace {

TEST(LatencyStats, PerDestinationRunningAverage) {
  LatencyStats s(4);
  // Eq. 4.1 is the running mean: feed 2, 4, 6 -> mean 4.
  s.record(1, 2e-6);
  s.record(1, 4e-6);
  s.record(1, 6e-6);
  EXPECT_DOUBLE_EQ(s.per_destination(1), 4e-6);
  EXPECT_DOUBLE_EQ(s.per_destination(0), 0.0);
}

TEST(LatencyStats, GlobalAverageOverActiveDestinations) {
  LatencyStats s(4);
  s.record(0, 2e-6);
  s.record(1, 4e-6);
  // Eq. 4.2 averages per-destination means over destinations with traffic.
  EXPECT_DOUBLE_EQ(s.global_average(), 3e-6);
}

TEST(LatencyStats, OverallMeanAndMax) {
  LatencyStats s(2);
  s.record(0, 1e-6);
  s.record(0, 3e-6);
  s.record(1, 8e-6);
  EXPECT_DOUBLE_EQ(s.overall_mean(), 4e-6);
  EXPECT_DOUBLE_EQ(s.max_latency(), 8e-6);
  EXPECT_EQ(s.count(), 3u);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.global_average(), 0.0);
}

TEST(TimeSeries, BinsByTime) {
  TimeSeries ts(1e-3);
  ts.add(0.5e-3, 2.0);
  ts.add(0.9e-3, 4.0);
  ts.add(1.5e-3, 10.0);
  EXPECT_EQ(ts.bins(), 2u);
  EXPECT_DOUBLE_EQ(ts.bin_mean(0), 3.0);
  EXPECT_DOUBLE_EQ(ts.bin_mean(1), 10.0);
  EXPECT_EQ(ts.bin_count(0), 2u);
  EXPECT_DOUBLE_EQ(ts.peak_mean(), 10.0);
}

TEST(TimeSeries, EmptyBinsReadZero) {
  TimeSeries ts(1e-3);
  ts.add(5e-3, 7.0);
  EXPECT_DOUBLE_EQ(ts.bin_mean(2), 0.0);
  EXPECT_EQ(ts.bin_count(2), 0u);
  EXPECT_EQ(ts.bins(), 6u);
}

TEST(TimeSeries, BinTimeIsCentre) {
  TimeSeries ts(2e-3);
  EXPECT_DOUBLE_EQ(ts.bin_time(0), 1e-3);
  EXPECT_DOUBLE_EQ(ts.bin_time(3), 7e-3);
}

TEST(TimeSeries, OutOfDomainTimesAreClampedNotTrusted) {
  // Regression test: a negative, NaN or astronomically large timestamp
  // must not index before the vector, OOM the process via resize, or hit
  // the UB of casting a huge double to size_t. Each clamp is counted.
  TimeSeries ts(1e-3);
  ts.add(-4e-3, 1.0);  // negative -> bin 0
  EXPECT_EQ(ts.bins(), 1u);
  EXPECT_EQ(ts.bin_count(0), 1u);
  EXPECT_EQ(ts.clamped(), 1u);

  ts.add(std::numeric_limits<double>::quiet_NaN(), 2.0);  // NaN -> bin 0
  EXPECT_EQ(ts.bin_count(0), 2u);
  EXPECT_EQ(ts.clamped(), 2u);

  ts.add(std::numeric_limits<double>::infinity(), 3.0);  // inf -> last bin
  ts.add(1e30, 4.0);                                     // huge -> last bin
  EXPECT_EQ(ts.bins(), TimeSeries::kMaxBins);
  EXPECT_EQ(ts.bin_count(TimeSeries::kMaxBins - 1), 2u);
  EXPECT_DOUBLE_EQ(ts.bin_mean(TimeSeries::kMaxBins - 1), 3.5);
  EXPECT_EQ(ts.clamped(), 4u);

  // In-domain samples stay unaffected and uncounted.
  ts.add(0.5e-3, 9.0);
  EXPECT_EQ(ts.clamped(), 4u);
  // reset() clears the clamp count with the bins.
  ts.reset();
  EXPECT_EQ(ts.clamped(), 0u);
  EXPECT_EQ(ts.bins(), 0u);
}

TEST(TimeSeries, PeakMeanExcludesSaturatedOverflowBin) {
  TimeSeries ts(1e-3);
  ts.add(0.5e-3, 2.0);
  ts.add(1.5e-3, 5.0);
  EXPECT_DOUBLE_EQ(ts.peak_mean(), 5.0);
  // A far-future timestamp saturates into the overflow bin with a huge
  // value. That bin now mixes samples from arbitrarily late times, so its
  // mean is not a "peak": peak_mean must ignore it and report the largest
  // in-domain bin instead, with the distortion counted for the exports.
  ts.add(1e30, 1000.0);
  EXPECT_EQ(ts.overflow_clamped(), 1u);
  EXPECT_EQ(ts.clamped(), 1u);
  EXPECT_DOUBLE_EQ(ts.peak_mean(), 5.0);
  // Negative/NaN clamps into bin 0 do not poison the last bin: only
  // overflow saturation excludes it.
  ts.add(-1e-3, 3.0);
  EXPECT_EQ(ts.clamped(), 2u);
  EXPECT_EQ(ts.overflow_clamped(), 1u);

  // A series whose last bin filled legitimately (no saturation) still
  // counts that bin as a peak candidate.
  TimeSeries edge(1e-3);
  edge.add((static_cast<double>(TimeSeries::kMaxBins) - 0.5) * 1e-3, 7.0);
  EXPECT_EQ(edge.overflow_clamped(), 0u);
  EXPECT_DOUBLE_EQ(edge.peak_mean(), 7.0);

  // reset() clears the overflow count with the bins.
  ts.reset();
  EXPECT_EQ(ts.overflow_clamped(), 0u);
}

TEST(LatencyMap, TracksPerRouterAverages) {
  LatencyMap m(4);
  m.record(2, 2e-6);
  m.record(2, 4e-6);
  m.record(1, 1e-6);
  EXPECT_DOUBLE_EQ(m.average(2), 3e-6);
  EXPECT_DOUBLE_EQ(m.peak(), 3e-6);
  EXPECT_DOUBLE_EQ(m.mean_over_active(), 2e-6);
  EXPECT_EQ(m.samples(0), 0u);
  m.reset();
  EXPECT_DOUBLE_EQ(m.peak(), 0.0);
}

TEST(Collector, AggregatesPacketAndMessageEvents) {
  MetricsCollector c(4, 4, 1e-3);
  Packet p;
  p.destination = 1;
  p.inject_time = 0;
  c.on_packet_delivered(p, 5e-6);
  c.on_message_injected(0, 1, 1024, 0);
  c.on_message_delivered(0, 1, 1024, 0, 5e-6);
  EXPECT_EQ(c.packets_delivered(), 1u);
  EXPECT_EQ(c.messages_delivered(), 1u);
  EXPECT_DOUBLE_EQ(c.avg_message_latency(), 5e-6);
  EXPECT_DOUBLE_EQ(c.delivery_ratio(), 1.0);
  EXPECT_DOUBLE_EQ(c.global_average_latency(), 5e-6);
}

TEST(Collector, DeliveryRatioZeroWhenNothingOffered) {
  MetricsCollector c(4, 4, 1e-3);
  // Degenerate run: no injection at all. The ratio must read 0 (never
  // NaN/inf from 0/0, never a misleading "perfect" 1.0).
  EXPECT_EQ(c.delivery_ratio(), 0.0);
  // Same after reset() clears a populated collector.
  c.on_message_injected(0, 1, 512, 0);
  c.on_message_delivered(0, 1, 512, 0, 5e-6);
  EXPECT_DOUBLE_EQ(c.delivery_ratio(), 1.0);
  c.reset();
  EXPECT_EQ(c.delivery_ratio(), 0.0);
}

TEST(Collector, WatchedRouterSeries) {
  MetricsCollector c(4, 4, 1e-3);
  c.watch_router(2);
  c.on_port_wait(2, 0, 3e-6, 0.5e-3);
  c.on_port_wait(3, 0, 9e-6, 0.5e-3);  // unwatched: map only
  const TimeSeries* s = c.router_series(2);
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->bin_mean(0), 3e-6);
  EXPECT_EQ(c.router_series(3), nullptr);
  EXPECT_DOUBLE_EQ(c.contention_map().average(3), 9e-6);
}

TEST(Collector, ResetKeepsWatchRegistrations) {
  MetricsCollector c(4, 4, 1e-3);
  c.watch_router(1);
  c.on_port_wait(1, 0, 3e-6, 0.5e-3);
  c.reset();
  ASSERT_NE(c.router_series(1), nullptr);
  EXPECT_EQ(c.router_series(1)->bins(), 0u);
  EXPECT_EQ(c.packets_delivered(), 0u);
}

}  // namespace
}  // namespace prdrb
