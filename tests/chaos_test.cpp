// Randomized conservation properties ("chaos" tests): under arbitrary
// message soups across topologies, policies and seeds, the network must
// deliver every message exactly once, conserve bytes, and leave every
// buffer empty when it drains.
#include <gtest/gtest.h>

#include "core/pr_drb.hpp"
#include "experiment/scenario.hpp"
#include "metrics/collector.hpp"
#include "sim/simulator.hpp"
#include "util/random.hpp"

namespace prdrb {
namespace {

struct ChaosCase {
  const char* topology;
  const char* policy;
  std::uint64_t seed;
  int messages;
};

class ChaosProperty : public ::testing::TestWithParam<ChaosCase> {};

TEST_P(ChaosProperty, ConservationHolds) {
  const ChaosCase c = GetParam();
  Simulator sim;
  auto topo = make_topology(c.topology).value_or_throw();
  NetConfig cfg;
  cfg.buffer_bytes = 64 * 1024;  // small buffers: exercise backpressure
  auto bundle = make_policy(c.policy).value_or_throw();
  Network net(sim, *topo, cfg, *bundle.policy);
  if (bundle.monitor) net.set_monitor(bundle.monitor.get());
  MetricsCollector metrics(topo->num_nodes(), topo->num_routers());
  net.set_observer(&metrics);

  std::uint64_t completions = 0;
  std::int64_t bytes_received = 0;
  net.set_message_handler([&](NodeId, NodeId, std::int64_t bytes, MpiType,
                              std::int64_t, SimTime) {
    ++completions;
    bytes_received += bytes;
  });

  Rng rng(c.seed);
  std::int64_t bytes_sent = 0;
  int expected = 0;
  for (int i = 0; i < c.messages; ++i) {
    const auto src = static_cast<NodeId>(rng.next_below(
        static_cast<std::uint64_t>(topo->num_nodes())));
    const auto dst = static_cast<NodeId>(rng.next_below(
        static_cast<std::uint64_t>(topo->num_nodes())));
    const auto bytes = static_cast<std::int64_t>(rng.next_int(1, 6000));
    const SimTime when = rng.next_double() * 1e-3;
    sim.schedule_at(when, [&net, src, dst, bytes] {
      net.send_message(src, dst, bytes);
    });
    bytes_sent += bytes;
    ++expected;
  }
  sim.run();

  EXPECT_EQ(completions, static_cast<std::uint64_t>(expected));
  EXPECT_EQ(bytes_received, bytes_sent);
  for (RouterId r = 0; r < net.num_routers(); ++r) {
    for (int vn = 0; vn < kNumVirtualNetworks; ++vn) {
      EXPECT_EQ(net.buffer_used(r, vn), 0)
          << c.topology << "/" << c.policy << " router " << r << " vn " << vn;
    }
  }
  for (NodeId n = 0; n < net.num_nodes(); ++n) {
    EXPECT_TRUE(net.nic(n).inject_queue.empty());
    EXPECT_TRUE(net.nic(n).rx.empty()) << "unfinished reassembly at " << n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Soups, ChaosProperty,
    ::testing::Values(ChaosCase{"mesh-4x4", "deterministic", 1, 400},
                      ChaosCase{"mesh-8x8", "drb", 2, 400},
                      ChaosCase{"mesh-4x4", "pr-drb", 3, 400},
                      ChaosCase{"torus-5x5", "deterministic", 4, 400},
                      ChaosCase{"tree-16", "random", 5, 400},
                      ChaosCase{"tree-32", "adaptive", 6, 400},
                      ChaosCase{"tree-64", "pr-drb@router", 7, 400},
                      ChaosCase{"tree-64", "pr-fr-drb", 8, 300},
                      ChaosCase{"kary-2-3", "cyclic", 9, 400},
                      ChaosCase{"mesh-2x2", "drb", 10, 200},
                      ChaosCase{"mesh-4x4x4", "drb", 11, 400},
                      ChaosCase{"cube-5", "pr-drb", 12, 300}));

}  // namespace
}  // namespace prdrb
