#include <gtest/gtest.h>

#include "core/pr_drb.hpp"
#include "test_util.hpp"

namespace prdrb {
namespace {

using test::Harness;

// ---------------------------------------------------------------------------
// FlowSignature

TEST(FlowSignature, CanonicalizesInput) {
  const std::vector<ContendingFlow> flows{{3, 4}, {1, 2}, {3, 4}};
  const auto sig = FlowSignature::from(flows);
  EXPECT_EQ(sig.size(), 2u);
  EXPECT_EQ(sig.flows()[0], (ContendingFlow{1, 2}));
}

TEST(FlowSignature, IdenticalSetsFullySimilar) {
  const std::vector<ContendingFlow> flows{{1, 2}, {3, 4}, {5, 6}};
  const auto a = FlowSignature::from(flows);
  const auto b = FlowSignature::from(flows);
  EXPECT_DOUBLE_EQ(a.similarity(b), 1.0);
}

TEST(FlowSignature, DisjointSetsZeroSimilar) {
  const auto a = FlowSignature::from(std::vector<ContendingFlow>{{1, 2}});
  const auto b = FlowSignature::from(std::vector<ContendingFlow>{{3, 4}});
  EXPECT_DOUBLE_EQ(a.similarity(b), 0.0);
}

TEST(FlowSignature, EmptySignaturesNotSimilar) {
  FlowSignature a;
  FlowSignature b;
  EXPECT_DOUBLE_EQ(a.similarity(b), 0.0);
}

struct SimilarityCase {
  int common;
  int only_a;
  int only_b;
  double expected;
};

class SignatureSimilarityProperty
    : public ::testing::TestWithParam<SimilarityCase> {};

TEST_P(SignatureSimilarityProperty, JaccardMatchesConstruction) {
  const auto c = GetParam();
  std::vector<ContendingFlow> fa;
  std::vector<ContendingFlow> fb;
  NodeId next = 0;
  for (int i = 0; i < c.common; ++i) {
    fa.push_back({next, next + 1});
    fb.push_back({next, next + 1});
    next += 2;
  }
  for (int i = 0; i < c.only_a; ++i) {
    fa.push_back({next, next + 1});
    next += 2;
  }
  for (int i = 0; i < c.only_b; ++i) {
    fb.push_back({next, next + 1});
    next += 2;
  }
  const auto a = FlowSignature::from(fa);
  const auto b = FlowSignature::from(fb);
  EXPECT_NEAR(a.similarity(b), c.expected, 1e-12);
  EXPECT_NEAR(b.similarity(a), c.expected, 1e-12);  // symmetric
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SignatureSimilarityProperty,
    ::testing::Values(SimilarityCase{4, 1, 0, 0.8},    // the paper's 80 %
                      SimilarityCase{4, 0, 1, 0.8},
                      SimilarityCase{1, 1, 1, 1.0 / 3.0},
                      SimilarityCase{3, 0, 0, 1.0},
                      SimilarityCase{0, 2, 3, 0.0},
                      SimilarityCase{8, 1, 1, 0.8}));

// ---------------------------------------------------------------------------
// SolutionDatabase

std::vector<Msp> two_paths() {
  std::vector<Msp> v;
  v.push_back(Msp{kInvalidNode, kInvalidNode, 5e-6, 3});
  v.push_back(Msp{4, 9, 7e-6, 2});
  return v;
}

TEST(SolutionDatabase, MissWithoutSave) {
  SolutionDatabase db;
  const auto sig = FlowSignature::from(std::vector<ContendingFlow>{{1, 2}});
  EXPECT_EQ(db.lookup(0, 7, sig, 0.8), nullptr);
  EXPECT_EQ(db.lookups(), 1u);
  EXPECT_EQ(db.hits(), 0u);
}

TEST(SolutionDatabase, SaveThenExactLookup) {
  SolutionDatabase db;
  const auto sig =
      FlowSignature::from(std::vector<ContendingFlow>{{1, 2}, {3, 4}});
  db.save(0, 7, sig, two_paths(), 6e-6, 0.8);
  SavedSolution* sol = db.lookup(0, 7, sig, 0.8);
  ASSERT_NE(sol, nullptr);
  EXPECT_EQ(sol->paths.size(), 2u);
  EXPECT_EQ(sol->hits, 1u);
  EXPECT_EQ(db.size(), 1u);
}

TEST(SolutionDatabase, ApproximateMatchAtEightyPercent) {
  SolutionDatabase db;
  std::vector<ContendingFlow> stored;
  for (NodeId i = 0; i < 8; ++i) stored.push_back({i, i + 100});
  db.save(0, 7, FlowSignature::from(stored), two_paths(), 6e-6, 0.8);
  // Query with 8 stored flows + 2 extra: similarity 8/10 = 0.8 -> hit.
  auto query = stored;
  query.push_back({50, 51});
  query.push_back({52, 53});
  EXPECT_NE(db.lookup(0, 7, FlowSignature::from(query), 0.8), nullptr);
  // 8 common out of 11 union -> 0.72 -> miss.
  query.push_back({54, 55});
  EXPECT_EQ(db.lookup(0, 7, FlowSignature::from(query), 0.8), nullptr);
}

TEST(SolutionDatabase, PerPairIsolation) {
  SolutionDatabase db;
  const auto sig = FlowSignature::from(std::vector<ContendingFlow>{{1, 2}});
  db.save(0, 7, sig, two_paths(), 6e-6, 0.8);
  EXPECT_EQ(db.lookup(1, 7, sig, 0.8), nullptr);
  EXPECT_EQ(db.patterns_for(0, 7), 1u);
  EXPECT_EQ(db.patterns_for(1, 7), 0u);
}

TEST(SolutionDatabase, BetterSolutionUpdatesStored) {
  SolutionDatabase db;
  const auto sig = FlowSignature::from(std::vector<ContendingFlow>{{1, 2}});
  db.save(0, 7, sig, two_paths(), 6e-6, 0.8);
  auto better = two_paths();
  better[1].in1 = 5;
  db.save(0, 7, sig, better, 3e-6, 0.8);  // improves -> replaces
  SavedSolution* sol = db.lookup(0, 7, sig, 0.8);
  ASSERT_NE(sol, nullptr);
  EXPECT_DOUBLE_EQ(sol->best_latency, 3e-6);
  EXPECT_EQ(sol->paths[1].in1, 5);
  EXPECT_EQ(db.updates(), 1u);
  EXPECT_EQ(db.size(), 1u);  // updated in place, not duplicated
}

TEST(SolutionDatabase, WorseSolutionDoesNotOverwrite) {
  SolutionDatabase db;
  const auto sig = FlowSignature::from(std::vector<ContendingFlow>{{1, 2}});
  db.save(0, 7, sig, two_paths(), 6e-6, 0.8);
  db.save(0, 7, sig, two_paths(), 9e-6, 0.8);
  SavedSolution* sol = db.lookup(0, 7, sig, 0.8);
  ASSERT_NE(sol, nullptr);
  EXPECT_DOUBLE_EQ(sol->best_latency, 6e-6);
  EXPECT_EQ(db.updates(), 0u);
}

TEST(SolutionDatabase, DistinctSituationsCoexist) {
  SolutionDatabase db;
  db.save(0, 7, FlowSignature::from(std::vector<ContendingFlow>{{1, 2}}),
          two_paths(), 6e-6, 0.8);
  db.save(0, 7, FlowSignature::from(std::vector<ContendingFlow>{{8, 9}}),
          two_paths(), 5e-6, 0.8);
  EXPECT_EQ(db.patterns_for(0, 7), 2u);
  EXPECT_EQ(db.reused_patterns(), 0u);
  db.lookup(0, 7, FlowSignature::from(std::vector<ContendingFlow>{{8, 9}}),
            0.8);
  EXPECT_EQ(db.reused_patterns(), 1u);
  EXPECT_EQ(db.max_reuse(), 1u);
}

TEST(SolutionDatabase, LookupPointerSurvivesLaterSaves) {
  // Regression (ASan-visible): lookup() used to return a pointer into a
  // vector bucket; the next save() to the same pair could reallocate the
  // bucket and dangle the pointer. Deque buckets keep it stable.
  SolutionDatabase db;
  const auto sig = FlowSignature::from(std::vector<ContendingFlow>{{1, 2}});
  db.save(0, 7, sig, two_paths(), 6e-6, 0.8);
  SavedSolution* sol = db.lookup(0, 7, sig, 0.8);
  ASSERT_NE(sol, nullptr);
  const SimTime seen = sol->best_latency;
  // Grow the same (0,7) bucket far past any initial vector capacity.
  for (NodeId i = 0; i < 64; ++i) {
    db.save(0, 7,
            FlowSignature::from(std::vector<ContendingFlow>{{i + 10, i + 90}}),
            two_paths(), 6e-6, 0.8);
  }
  EXPECT_DOUBLE_EQ(sol->best_latency, seen);  // reads through the old ptr
  EXPECT_EQ(sol->hits, 1u);
}

TEST(SolutionDatabase, EmptySignatureNeverStored) {
  SolutionDatabase db;
  db.save(0, 7, FlowSignature{}, two_paths(), 6e-6, 0.8);
  EXPECT_EQ(db.size(), 0u);
}

TEST(SolutionDatabase, EmptySignatureProbesCountedApart) {
  // An empty signature can never match (save() refuses them), so probing
  // with one is a degenerate query. It used to bump lookups_, silently
  // deflating the hit rate the counters report; now it lands in its own
  // counter and leaves the real lookup statistics alone.
  SolutionDatabase db;
  const auto sig = FlowSignature::from(std::vector<ContendingFlow>{{1, 2}});
  db.save(0, 7, sig, two_paths(), 6e-6, 0.8);
  EXPECT_EQ(db.lookup(0, 7, FlowSignature{}, 0.8), nullptr);
  EXPECT_EQ(db.lookup(0, 7, FlowSignature{}, 0.8), nullptr);
  EXPECT_EQ(db.empty_probes(), 2u);
  EXPECT_EQ(db.lookups(), 0u) << "degenerate probes must not skew lookups";
  EXPECT_EQ(db.hits(), 0u);
  ASSERT_NE(db.lookup(0, 7, sig, 0.8), nullptr);
  EXPECT_EQ(db.lookups(), 1u);
  EXPECT_EQ(db.hits(), 1u);
  EXPECT_EQ(db.empty_probes(), 2u);
}

// ---------------------------------------------------------------------------
// PrDrbPolicy zone reactions, driven by synthetic ACKs.

Packet congested_ack(NodeId src, NodeId dst, SimTime e2e,
                     std::vector<ContendingFlow> flows, int msp_index = 0) {
  Packet ack;
  ack.type = PacketType::kAck;
  ack.source = dst;
  ack.destination = src;
  ack.msp_index = msp_index;
  ack.reported_e2e = e2e;
  ack.contending.assign(flows.begin(), flows.end());
  return ack;
}

struct PrDrbFixture : ::testing::Test {
  PrDrbFixture() {
    DrbConfig cfg;
    cfg.threshold_low = 6e-6;
    cfg.threshold_high = 12e-6;
    cfg.max_paths = 4;
    policy = new PrDrbPolicy(cfg, PrDrbConfig{}, 5);
    h = Harness::make<Mesh2D>(NetConfig{}, policy, 8, 8);
  }

  /// Drive one full congestion episode: High (learn paths) then calm down
  /// (H->M saves the solution).
  void run_episode(const std::vector<ContendingFlow>& flows) {
    policy->choose_path(0, 7, 0);
    for (int i = 0; i < 4; ++i) {
      policy->on_ack(0, congested_ack(0, 7, 50e-6, flows), 0);
    }
    // Medium-band ACKs on every path: aggregate lands between thresholds.
    for (int i = 0; i < policy->open_paths(0, 7); ++i) {
      policy->on_ack(0, congested_ack(0, 7, 30e-6, flows, i), 0);
    }
    ASSERT_EQ(policy->find_metapath(0, 7)->zone, Zone::kMedium)
        << "episode must end in the working zone";
  }

  PrDrbPolicy* policy = nullptr;
  Harness h;
};

TEST_F(PrDrbFixture, HighToMediumSavesSolution) {
  run_episode({{1, 7}, {2, 7}});
  EXPECT_EQ(policy->engine().db().size(), 1u);
  EXPECT_EQ(policy->engine().installs(), 0u);  // nothing to reuse yet
}

TEST_F(PrDrbFixture, RepeatedSituationInstallsSavedSolution) {
  const std::vector<ContendingFlow> flows{{1, 7}, {2, 7}};
  run_episode(flows);
  const auto saved_paths = policy->find_metapath(0, 7)->paths.size();

  // Quiet phase: latency collapses, paths close.
  for (int round = 0; round < 40 && policy->open_paths(0, 7) > 1; ++round) {
    for (int i = 0; i < policy->open_paths(0, 7); ++i) {
      policy->on_ack(0, congested_ack(0, 7, 4e-6, {}, i), 0);
    }
  }
  ASSERT_EQ(policy->open_paths(0, 7), 1);

  // The same congestion pattern reappears: one High ACK must restore the
  // whole saved path set at once instead of opening gradually.
  policy->on_ack(0, congested_ack(0, 7, 50e-6, flows), 0);
  EXPECT_EQ(policy->engine().installs(), 1u);
  EXPECT_EQ(policy->find_metapath(0, 7)->paths.size(), saved_paths);
}

TEST_F(PrDrbFixture, UnknownSituationFallsBackToGradualOpening) {
  run_episode({{1, 7}, {2, 7}});
  for (int round = 0; round < 40 && policy->open_paths(0, 7) > 1; ++round) {
    for (int i = 0; i < policy->open_paths(0, 7); ++i) {
      policy->on_ack(0, congested_ack(0, 7, 4e-6, {}, i), 0);
    }
  }
  // A completely different contention pattern: database miss.
  policy->on_ack(0, congested_ack(0, 7, 50e-6, {{30, 40}, {31, 41}}), 0);
  EXPECT_EQ(policy->engine().installs(), 0u);
  EXPECT_EQ(policy->open_paths(0, 7), 2);  // one gradual expansion
}

TEST_F(PrDrbFixture, PredictiveAckTriggersEarlyReaction) {
  run_episode({{1, 7}, {2, 7}});
  for (int round = 0; round < 40 && policy->open_paths(0, 7) > 1; ++round) {
    for (int i = 0; i < policy->open_paths(0, 7); ++i) {
      policy->on_ack(0, congested_ack(0, 7, 4e-6, {}, i), 0);
    }
  }
  // Router-based early notification, before any latency threshold crossing.
  Packet pack;
  pack.type = PacketType::kPredictiveAck;
  pack.source = 7;
  pack.destination = 0;
  pack.contending = {{1, 7}, {2, 7}};
  pack.congested_router = 12;
  policy->on_ack(0, pack, 0);
  EXPECT_EQ(policy->engine().installs(), 1u);
  EXPECT_GT(policy->open_paths(0, 7), 1);
}

TEST(PrFrDrb, WatchdogConsultsDatabase) {
  DrbConfig cfg;
  cfg.threshold_low = 6e-6;
  cfg.threshold_high = 12e-6;
  FrDrbConfig fr;
  fr.watchdog_timeout = 10e-6;
  auto* pol = new PrFrDrbPolicy(cfg, fr, PrDrbConfig{}, 5);
  auto h = Harness::make<Mesh2D>(NetConfig{}, pol, 8, 8);
  // Learn an episode through normal ACKs.
  pol->choose_path(0, 7, 0);
  const std::vector<ContendingFlow> flows{{1, 7}, {2, 7}};
  for (int i = 0; i < 4; ++i) pol->on_ack(0, congested_ack(0, 7, 50e-6, flows), 0);
  for (int i = 0; i < pol->open_paths(0, 7); ++i) {
    pol->on_ack(0, congested_ack(0, 7, 30e-6, flows, i), 0);
  }
  ASSERT_GT(pol->engine().db().size(), 0u);
  // Calm down.
  for (int round = 0; round < 40 && pol->open_paths(0, 7) > 1; ++round) {
    for (int i = 0; i < pol->open_paths(0, 7); ++i) {
      pol->on_ack(0, congested_ack(0, 7, 4e-6, {}, i), 0);
    }
  }
  ASSERT_EQ(pol->open_paths(0, 7), 1);
  // Silent congestion: the watchdog fires and installs the saved solution.
  pol->on_message_sent(0, 7, 42, {}, 0);
  h.sim.run();
  EXPECT_EQ(pol->watchdog_fires(), 1u);
  EXPECT_EQ(pol->engine().installs(), 1u);
  EXPECT_GT(pol->open_paths(0, 7), 1);
}

// ---------------------------------------------------------------------------
// CongestionDetector (CFD/GPA) — integration through the network.

TEST(Cfd, DestinationBasedFillsPredictiveHeader) {
  NetConfig cfg;
  cfg.router_contention_threshold_s = 1e-6;
  auto* probe = new PrDrbPolicy;
  auto h = Harness::make<Mesh2D>(cfg, probe, 4, 4);
  CongestionDetector cfd(NotificationMode::kDestinationBased);
  h.net->set_monitor(&cfd);
  // Two flows fight for router 1's east port.
  for (int i = 0; i < 30; ++i) {
    h.net->send_message(0, 3, 1024);
    h.net->send_message(1, 3, 1024);
  }
  h.sim.run();
  EXPECT_GT(cfd.detections(), 0u);
  EXPECT_EQ(cfd.predictive_acks(), 0u);
  // The contending flows travelled back in regular ACKs and reached the
  // sources' metapaths.
  const Metapath* mp = probe->find_metapath(0, 3);
  ASSERT_NE(mp, nullptr);
  EXPECT_FALSE(mp->recent_flows.empty());
}

TEST(Cfd, RouterBasedInjectsPredictiveAcks) {
  NetConfig cfg;
  cfg.router_contention_threshold_s = 1e-6;
  auto* probe = new PrDrbPolicy(DrbConfig{},
                                PrDrbConfig{.similarity = 0.8,
                                            .notification =
                                                NotificationMode::kRouterBased});
  auto h = Harness::make<Mesh2D>(cfg, probe, 4, 4);
  CongestionDetector cfd(NotificationMode::kRouterBased);
  h.net->set_monitor(&cfd);
  for (int i = 0; i < 30; ++i) {
    h.net->send_message(0, 3, 1024);
    h.net->send_message(1, 3, 1024);
  }
  h.sim.run();
  EXPECT_GT(cfd.detections(), 0u);
  EXPECT_GT(cfd.predictive_acks(), 0u);
}

TEST(Cfd, BelowThresholdStaysQuiet) {
  NetConfig cfg;
  cfg.router_contention_threshold_s = 1.0;  // unreachable
  auto* probe = new PrDrbPolicy;
  auto h = Harness::make<Mesh2D>(cfg, probe, 4, 4);
  CongestionDetector cfd(NotificationMode::kRouterBased);
  h.net->set_monitor(&cfd);
  for (int i = 0; i < 10; ++i) h.net->send_message(0, 3, 1024);
  h.sim.run();
  EXPECT_EQ(cfd.detections(), 0u);
  EXPECT_EQ(cfd.predictive_acks(), 0u);
}

}  // namespace
}  // namespace prdrb
