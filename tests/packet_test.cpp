#include <gtest/gtest.h>

#include "net/packet.hpp"

namespace prdrb {
namespace {

TEST(Packet, DirectPathTargetsDestination) {
  Packet p;
  p.source = 1;
  p.destination = 9;
  EXPECT_EQ(p.current_target(), 9);
  EXPECT_EQ(p.virtual_network(), 0);
}

TEST(Packet, TwoIntermediateTargetsInOrder) {
  Packet p;
  p.source = 0;
  p.destination = 9;
  p.intermediate1 = 3;
  p.intermediate2 = 6;
  EXPECT_EQ(p.current_target(), 3);
  EXPECT_TRUE(p.advance_header(3));
  EXPECT_EQ(p.current_target(), 6);
  EXPECT_EQ(p.virtual_network(), 1);
  EXPECT_TRUE(p.advance_header(6));
  EXPECT_EQ(p.current_target(), 9);
  EXPECT_EQ(p.virtual_network(), 2);
}

TEST(Packet, SingleIntermediateSkipsUnusedSlot) {
  Packet p;
  p.destination = 9;
  p.intermediate1 = 4;
  EXPECT_EQ(p.current_target(), 4);
  EXPECT_TRUE(p.advance_header(4));
  EXPECT_EQ(p.current_target(), 9);
}

TEST(Packet, In2OnlyPathUsedWhenIn1Unset) {
  Packet p;
  p.destination = 9;
  p.intermediate2 = 5;
  EXPECT_EQ(p.current_target(), 5);
  EXPECT_TRUE(p.advance_header(5));
  EXPECT_EQ(p.current_target(), 9);
}

TEST(Packet, AdvanceHeaderIgnoresWrongNode) {
  Packet p;
  p.destination = 9;
  p.intermediate1 = 4;
  EXPECT_FALSE(p.advance_header(7));
  EXPECT_EQ(p.current_target(), 4);
}

TEST(Packet, DuplicateIntermediateAdvancesThroughBoth) {
  Packet p;
  p.destination = 9;
  p.intermediate1 = 4;
  p.intermediate2 = 4;
  EXPECT_TRUE(p.advance_header(4));
  EXPECT_EQ(p.current_target(), 9);
}

TEST(Packet, AcksUseDedicatedVirtualNetwork) {
  Packet p;
  p.type = PacketType::kAck;
  EXPECT_EQ(p.virtual_network(), kNumVirtualNetworks - 1);
  p.type = PacketType::kPredictiveAck;
  EXPECT_EQ(p.virtual_network(), kNumVirtualNetworks - 1);
  EXPECT_TRUE(p.is_ack());
}

TEST(Packet, DescribeMentionsEndpoints) {
  Packet p;
  p.source = 2;
  p.destination = 5;
  p.intermediate1 = 3;
  const std::string d = p.describe();
  EXPECT_NE(d.find("2->5"), std::string::npos);
  EXPECT_NE(d.find("via 3"), std::string::npos);
}

TEST(ContendingFlow, OrderingAndEquality) {
  const ContendingFlow a{1, 2};
  const ContendingFlow b{1, 3};
  const ContendingFlow c{1, 2};
  EXPECT_EQ(a, c);
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
}

}  // namespace
}  // namespace prdrb
