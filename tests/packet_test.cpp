#include <utility>

#include <gtest/gtest.h>

#include "net/packet.hpp"

namespace prdrb {
namespace {

TEST(Packet, DirectPathTargetsDestination) {
  Packet p;
  p.source = 1;
  p.destination = 9;
  EXPECT_EQ(p.current_target(), 9);
  EXPECT_EQ(p.virtual_network(), 0);
}

TEST(Packet, TwoIntermediateTargetsInOrder) {
  Packet p;
  p.source = 0;
  p.destination = 9;
  p.intermediate1 = 3;
  p.intermediate2 = 6;
  EXPECT_EQ(p.current_target(), 3);
  EXPECT_TRUE(p.advance_header(3));
  EXPECT_EQ(p.current_target(), 6);
  EXPECT_EQ(p.virtual_network(), 1);
  EXPECT_TRUE(p.advance_header(6));
  EXPECT_EQ(p.current_target(), 9);
  EXPECT_EQ(p.virtual_network(), 2);
}

TEST(Packet, SingleIntermediateSkipsUnusedSlot) {
  Packet p;
  p.destination = 9;
  p.intermediate1 = 4;
  EXPECT_EQ(p.current_target(), 4);
  EXPECT_TRUE(p.advance_header(4));
  EXPECT_EQ(p.current_target(), 9);
}

TEST(Packet, In2OnlyPathUsedWhenIn1Unset) {
  Packet p;
  p.destination = 9;
  p.intermediate2 = 5;
  EXPECT_EQ(p.current_target(), 5);
  EXPECT_TRUE(p.advance_header(5));
  EXPECT_EQ(p.current_target(), 9);
}

TEST(Packet, AdvanceHeaderIgnoresWrongNode) {
  Packet p;
  p.destination = 9;
  p.intermediate1 = 4;
  EXPECT_FALSE(p.advance_header(7));
  EXPECT_EQ(p.current_target(), 4);
}

TEST(Packet, DuplicateIntermediateAdvancesThroughBoth) {
  Packet p;
  p.destination = 9;
  p.intermediate1 = 4;
  p.intermediate2 = 4;
  EXPECT_TRUE(p.advance_header(4));
  EXPECT_EQ(p.current_target(), 9);
}

TEST(Packet, AcksUseDedicatedVirtualNetwork) {
  Packet p;
  p.type = PacketType::kAck;
  EXPECT_EQ(p.virtual_network(), kNumVirtualNetworks - 1);
  p.type = PacketType::kPredictiveAck;
  EXPECT_EQ(p.virtual_network(), kNumVirtualNetworks - 1);
  EXPECT_TRUE(p.is_ack());
}

TEST(Packet, DescribeMentionsEndpoints) {
  Packet p;
  p.source = 2;
  p.destination = 5;
  p.intermediate1 = 3;
  const std::string d = p.describe();
  EXPECT_NE(d.find("2->5"), std::string::npos);
  EXPECT_NE(d.find("via 3"), std::string::npos);
}

TEST(ContendingFlow, OrderingAndEquality) {
  const ContendingFlow a{1, 2};
  const ContendingFlow b{1, 3};
  const ContendingFlow c{1, 2};
  EXPECT_EQ(a, c);
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
}

}  // namespace
TEST(AppendFlow, DedupsCapsAndReportsOutcome) {
  ContendingList list;
  EXPECT_EQ(append_flow(list, {1, 2}, 2), FlowAppend::kAdded);
  EXPECT_EQ(append_flow(list, {1, 2}, 2), FlowAppend::kDuplicate);
  EXPECT_EQ(append_flow(list, {3, 4}, 2), FlowAppend::kAdded);
  EXPECT_EQ(append_flow(list, {5, 6}, 2), FlowAppend::kCapped);
  // A duplicate of a stored flow is reported as such even at the cap.
  EXPECT_EQ(append_flow(list, {3, 4}, 2), FlowAppend::kDuplicate);
  EXPECT_EQ(list.size(), 2u);
}

TEST(SmallVectorT, StaysInlineUpToCapacityThenSpills) {
  SmallVector<int, 4> v;
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_TRUE(v.is_inline());
  v.push_back(4);
  EXPECT_FALSE(v.is_inline());
  for (int i = 0; i < 5; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
  // clear() keeps the spilled capacity for reuse (no churn on recycle).
  const std::size_t cap = v.capacity();
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.capacity(), cap);
}

TEST(SmallVectorT, MoveStealsHeapAndCopiesInline) {
  SmallVector<int, 2> inline_v{7, 8};
  SmallVector<int, 2> m1 = std::move(inline_v);
  ASSERT_EQ(m1.size(), 2u);
  EXPECT_EQ(m1[0], 7);
  EXPECT_TRUE(m1.is_inline());

  SmallVector<int, 2> spilled{1, 2, 3};
  SmallVector<int, 2> m2 = std::move(spilled);
  ASSERT_EQ(m2.size(), 3u);
  EXPECT_EQ(m2[2], 3);
  EXPECT_FALSE(m2.is_inline());
  EXPECT_TRUE(spilled.empty());  // NOLINT(bugprone-use-after-move)
}

}  // namespace prdrb