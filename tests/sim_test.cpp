#include <array>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

namespace prdrb {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().action();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelSkipsEvent) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&] { ++fired; });
  const EventId id = q.schedule(2.0, [&] { fired += 100; });
  q.schedule(3.0, [&] { ++fired; });
  q.cancel(id);
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, CancelTwiceIsHarmless) {
  EventQueue q;
  const EventId id = q.schedule(1.0, [] {});
  q.cancel(id);
  q.cancel(id);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelAfterFireLeavesNoTombstone) {
  // Regression: cancelling an id whose event already fired used to park a
  // tombstone in the cancelled set forever (nothing ever purged it).
  EventQueue q;
  const EventId id = q.schedule(1.0, [] {});
  q.pop().action();  // the event fires
  q.cancel(id);      // FR-DRB-style late cancel must be a true no-op
  EXPECT_EQ(q.pending_cancellations(), 0u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TombstoneSetStaysBoundedUnderChurn) {
  // Watchdog churn: schedule, fire, then cancel the fired id — repeated.
  // The tombstone set must stay bounded (here: empty) instead of growing
  // by one entry per iteration.
  EventQueue q;
  for (int i = 0; i < 1000; ++i) {
    const EventId id = q.schedule(static_cast<SimTime>(i), [] {});
    q.pop().action();
    q.cancel(id);
  }
  EXPECT_EQ(q.pending_cancellations(), 0u);

  // Pending cancels do tombstone, but purge on pop reclaims them.
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(q.schedule(static_cast<SimTime>(i), [] {}));
  }
  for (EventId id : ids) q.cancel(id);
  EXPECT_LE(q.pending_cancellations(), 100u);
  EXPECT_TRUE(q.empty());  // purges everything
  EXPECT_EQ(q.pending_cancellations(), 0u);
}

TEST(EventQueue, CancelOfUnknownIdIsIgnored) {
  EventQueue q;
  q.cancel(0);     // the "no event" sentinel
  q.cancel(999);   // never issued
  EXPECT_EQ(q.pending_cancellations(), 0u);
  const EventId id = q.schedule(1.0, [] {});
  q.cancel(id + 1);  // not issued yet
  EXPECT_EQ(q.pending_cancellations(), 0u);
  q.pop();
}

TEST(EventQueue, NextTimeReflectsEarliestLiveEvent) {
  EventQueue q;
  const EventId early = q.schedule(1.0, [] {});
  q.schedule(5.0, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 1.0);
  q.cancel(early);
  EXPECT_DOUBLE_EQ(q.next_time(), 5.0);
}

TEST(EventQueue, ConstQueriesAreConstAndConsistent) {
  // empty()/next_time()/size()/pending_cancellations() are const queries:
  // calling them through a const ref must compile and must not change any
  // observable state (regression for the old purge-on-read empty()).
  EventQueue q;
  const EventQueue& cq = q;
  EXPECT_TRUE(cq.empty());
  EXPECT_EQ(cq.next_time(), kTimeInfinity);
  q.schedule(2.0, [] {});
  const EventId mid = q.schedule(3.0, [] {});
  q.cancel(mid);
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(cq.empty());
    EXPECT_DOUBLE_EQ(cq.next_time(), 2.0);
    EXPECT_EQ(cq.size(), 2u);
    EXPECT_EQ(cq.live(), 1u);
    EXPECT_EQ(cq.pending_cancellations(), 1u);
  }
}

TEST(EventQueue, TombstonesNeverExceedSize) {
  // Adversarial churn: interleave schedules, mid-heap cancels, and pops.
  // The tombstone count must stay bounded by the heap size at every step.
  EventQueue q;
  std::vector<EventId> ids;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 20; ++i) {
      ids.push_back(q.schedule(static_cast<SimTime>((round * 37 + i * 11) % 97),
                               [] {}));
    }
    // Cancel every third outstanding id (some already fired: true no-ops).
    for (std::size_t i = 0; i < ids.size(); i += 3) q.cancel(ids[i]);
    ASSERT_LE(q.pending_cancellations(), q.size());
    for (int i = 0; i < 10 && !q.empty(); ++i) {
      q.pop();
      ASSERT_LE(q.pending_cancellations(), q.size());
    }
  }
  while (!q.empty()) q.pop();
  EXPECT_EQ(q.pending_cancellations(), 0u);
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, SlotReuseDoesNotConfuseStaleIds) {
  // A slot freed by fire/cancel is recycled for later events; a stale id
  // kept from the earlier occupant must not cancel the new one.
  EventQueue q;
  const EventId old_id = q.schedule(1.0, [] {});
  q.pop();  // fires; slot is recycled
  int fired = 0;
  q.schedule(2.0, [&] { ++fired; });  // reuses the slot
  q.cancel(old_id);                   // stale handle: must be a no-op
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, EventIdsAreMonotonic) {
  // Ids order by scheduling time — the property the heap tie-break (and
  // deterministic replay of simultaneous events) is built on.
  EventQueue q;
  EventId prev = 0;
  for (int i = 0; i < 100; ++i) {
    const EventId id = q.schedule(1.0, [] {});
    EXPECT_GT(id, prev);
    prev = id;
    if (i % 2 == 0) q.pop();  // slot recycling must not break monotonicity
  }
}

TEST(InlineFunction, LargeCapturesSpillToHeapAndStillRun) {
  // Captures beyond the inline budget must still work (single allocation,
  // std::function-equivalent semantics).
  std::array<std::uint64_t, 32> big{};  // 256 bytes > kActionCapacity
  big[0] = 7;
  big[31] = 11;
  std::uint64_t sum = 0;
  EventQueue::Action a{[big, &sum] { sum = big[0] + big[31]; }};
  EventQueue::Action b{std::move(a)};  // relocating a heap-backed action
  b();
  EXPECT_EQ(sum, 18u);
}

TEST(InlineFunction, MoveOnlyCapturesWork) {
  auto p = std::make_unique<int>(41);
  int seen = 0;
  EventQueue::Action a{[p = std::move(p), &seen] { seen = *p + 1; }};
  EventQueue::Action b{std::move(a)};
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(seen, 42);
}

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator sim;
  SimTime seen = -1;
  sim.schedule_in(2.5, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 2.5);
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator sim;
  int fired = 0;
  sim.schedule_in(1.0, [&] { ++fired; });
  sim.schedule_in(10.0, [&] { ++fired; });
  sim.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, NestedSchedulingWorks) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.schedule_in(1.0, [&] {
    times.push_back(sim.now());
    sim.schedule_in(1.0, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 2.0);
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule_in(i * 0.1, [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 5u);
}

TEST(Simulator, ZeroDelayEventRunsAtCurrentTime) {
  Simulator sim;
  SimTime t = -1;
  sim.schedule_in(1.0, [&] {
    sim.schedule_in(0.0, [&] { t = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(t, 1.0);
}

}  // namespace
}  // namespace prdrb
