// Shared contract suite over every concrete topology (topology.hpp): the
// invariants the routing layer builds on hold for the 2D mesh and torus, the
// N-dimensional mesh, the k-ary n-tree and the dragonfly alike —
//
//   * neighbor() is an involution (reciprocal ports) and reciprocal ports
//     share a link class;
//   * distance() is a symmetric non-negative metric with distance(a, a) = 0;
//   * walking any first minimal port reaches the destination in exactly
//     distance() hops (minimal really is minimal, and strictly decreasing);
//   * minimal_ports / msp_candidates APPEND in a canonical deterministic
//     order, preserving existing buffer contents;
//   * every MSP ring beyond num_nodes() is exhausted;
//   * deterministic_choice and nonminimal_intermediate are pure functions
//     of their arguments, in range, and never return an endpoint.
//
// New topologies join the suite by adding one factory line to kCases.
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/dragonfly.hpp"
#include "net/kary_ntree.hpp"
#include "net/mesh2d.hpp"
#include "net/mesh_nd.hpp"
#include "net/topology.hpp"

namespace prdrb {
namespace {

struct TopoCase {
  const char* label;
  std::unique_ptr<Topology> (*make)();
};

const TopoCase kCases[] = {
    {"Mesh2D", [] {
       return std::unique_ptr<Topology>(std::make_unique<Mesh2D>(4, 4));
     }},
    {"Torus2D", [] {
       return std::unique_ptr<Topology>(std::make_unique<Mesh2D>(4, 4, true));
     }},
    {"MeshND", [] {
       return std::unique_ptr<Topology>(
           std::make_unique<MeshND>(std::vector<int>{3, 3, 3}, true));
     }},
    {"KAryNTree", [] {
       return std::unique_ptr<Topology>(std::make_unique<KAryNTree>(4, 2));
     }},
    {"Dragonfly", [] {
       return std::unique_ptr<Topology>(std::make_unique<Dragonfly>(4, 9, 2, 4));
     }},
    {"DragonflyMin", [] {
       return std::unique_ptr<Topology>(std::make_unique<Dragonfly>(2, 3, 1, 1));
     }},
};

class TopologyContract : public ::testing::TestWithParam<TopoCase> {
 protected:
  void SetUp() override { topo_ = GetParam().make(); }

  /// A small deterministic sample of node pairs spread across the machine.
  std::vector<std::pair<NodeId, NodeId>> sample_pairs() const {
    const int n = topo_->num_nodes();
    std::vector<std::pair<NodeId, NodeId>> pairs;
    const int stride = n >= 7 ? n / 7 : 1;
    for (int s = 0; s < n; s += stride) {
      for (int d : {0, n / 3, n - 1 - s % 3}) {
        if (d >= 0 && d < n) pairs.emplace_back(s, d);
      }
    }
    return pairs;
  }

  std::unique_ptr<Topology> topo_;
};

TEST_P(TopologyContract, NeighborReciprocityAndClassSymmetry) {
  const Topology& t = *topo_;
  int connected = 0;
  for (RouterId r = 0; r < t.num_routers(); ++r) {
    for (int p = 0; p < t.radix(r); ++p) {
      const PortTarget far = t.neighbor(r, p);
      const LinkClass cls = t.link_class(r, p);
      if (!far.valid()) {
        EXPECT_EQ(cls, LinkClass::kInvalid)
            << GetParam().label << " r" << r << " p" << p;
        continue;
      }
      ++connected;
      ASSERT_GE(far.router, 0);
      ASSERT_LT(far.router, t.num_routers());
      ASSERT_GE(far.port, 0);
      ASSERT_LT(far.port, t.radix(far.router));
      const PortTarget back = t.neighbor(far.router, far.port);
      ASSERT_TRUE(back.valid());
      EXPECT_EQ(back.router, r) << GetParam().label << " r" << r << " p" << p;
      EXPECT_EQ(back.port, p) << GetParam().label << " r" << r << " p" << p;
      // Reciprocal ports are the same physical link; classes must agree,
      // and an inter-router link is never "terminal".
      EXPECT_EQ(cls, t.link_class(far.router, far.port));
      EXPECT_TRUE(cls == LinkClass::kLocal || cls == LinkClass::kGlobal);
    }
  }
  EXPECT_GT(connected, 0);
}

TEST_P(TopologyContract, DistanceIsASymmetricMetric) {
  const Topology& t = *topo_;
  for (const auto& [s, d] : sample_pairs()) {
    const int sd = t.distance(s, d);
    EXPECT_GE(sd, 0);
    EXPECT_EQ(sd, t.distance(d, s)) << GetParam().label << " " << s << "<->"
                                    << d;
    if (t.node_router(s) == t.node_router(d)) EXPECT_EQ(sd, 0);
  }
  for (NodeId n = 0; n < t.num_nodes(); n += 3) {
    EXPECT_EQ(t.distance(n, n), 0);
  }
}

TEST_P(TopologyContract, MinimalWalkReachesDestinationInDistanceHops) {
  const Topology& t = *topo_;
  std::vector<int> ports;
  for (const auto& [s, d] : sample_pairs()) {
    RouterId r = t.node_router(s);
    const RouterId goal = t.node_router(d);
    const int expect_hops = t.distance(s, d);
    int hops = 0;
    while (r != goal) {
      ports.clear();
      t.minimal_ports(r, d, ports);
      ASSERT_FALSE(ports.empty())
          << GetParam().label << ": no minimal port at router " << r
          << " toward node " << d;
      for (int p : ports) {
        ASSERT_GE(p, 0);
        ASSERT_LT(p, t.radix(r));
        ASSERT_TRUE(t.neighbor(r, p).valid());
      }
      r = t.neighbor(r, ports.front()).router;
      ASSERT_LE(++hops, expect_hops)
          << GetParam().label << ": walk " << s << "->" << d
          << " exceeded the minimal distance";
    }
    EXPECT_EQ(hops, expect_hops) << GetParam().label << ": " << s << "->" << d;
    ports.clear();
    t.minimal_ports(r, d, ports);
    EXPECT_TRUE(ports.empty()) << "local delivery must append nothing";
  }
}

TEST_P(TopologyContract, MinimalPortsAppendsDeterministically) {
  const Topology& t = *topo_;
  std::vector<int> a, b;
  for (const auto& [s, d] : sample_pairs()) {
    const RouterId r = t.node_router(s);
    a.clear();
    a.push_back(-7);  // sentinel: append must preserve existing contents
    t.minimal_ports(r, d, a);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a.front(), -7);
    b.clear();
    t.minimal_ports(r, d, b);
    ASSERT_EQ(a.size(), b.size() + 1);
    for (std::size_t i = 0; i < b.size(); ++i) {
      EXPECT_EQ(a[i + 1], b[i]) << "two enumerations must agree";
      for (std::size_t j = i + 1; j < b.size(); ++j) {
        EXPECT_NE(b[i], b[j]) << "duplicate minimal port";
      }
    }
  }
}

TEST_P(TopologyContract, MspRingsAppendDeterministicallyAndExhaust) {
  const Topology& t = *topo_;
  const NodeId src = 0;
  const NodeId dst = t.num_nodes() - 1;
  std::vector<MspCandidate> a, b;
  for (int ring = 1; ring <= 4; ++ring) {
    a.clear();
    a.push_back(MspCandidate{kInvalidNode, kInvalidNode});  // sentinel
    t.msp_candidates(src, dst, ring, a);
    EXPECT_EQ(a.front(), (MspCandidate{kInvalidNode, kInvalidNode}));
    b.clear();
    t.msp_candidates(src, dst, ring, b);
    ASSERT_EQ(a.size(), b.size() + 1) << "ring " << ring;
    for (std::size_t i = 0; i < b.size(); ++i) {
      EXPECT_EQ(a[i + 1], b[i]);
      if (b[i].in1 != kInvalidNode) {
        EXPECT_GE(b[i].in1, 0);
        EXPECT_LT(b[i].in1, t.num_nodes());
      }
    }
  }
  // Every ring beyond num_nodes() is exhausted (the DRB expansion loop's
  // termination guarantee).
  b.clear();
  t.msp_candidates(src, dst, t.num_nodes() + 1, b);
  EXPECT_TRUE(b.empty());
  b.clear();
  t.msp_candidates(src, dst, t.num_nodes() * 2, b);
  EXPECT_TRUE(b.empty());
}

TEST_P(TopologyContract, DeterministicChoiceIsPureAndInRange) {
  const Topology& t = *topo_;
  for (const auto& [s, d] : sample_pairs()) {
    const RouterId r = t.node_router(s);
    for (int n : {1, 2, 3, 5}) {
      const int c = t.deterministic_choice(r, s, d, n);
      EXPECT_GE(c, 0);
      EXPECT_LT(c, n);
      EXPECT_EQ(c, t.deterministic_choice(r, s, d, n)) << "must be pure";
    }
  }
}

TEST_P(TopologyContract, NonminimalIntermediateIsPureAndNeverAnEndpoint) {
  const Topology& t = *topo_;
  for (const auto& [s, d] : sample_pairs()) {
    for (std::uint64_t salt : {0ull, 1ull, 99ull}) {
      const NodeId in = t.nonminimal_intermediate(s, d, salt);
      EXPECT_EQ(in, t.nonminimal_intermediate(s, d, salt)) << "must be pure";
      if (in == kInvalidNode) continue;  // no useful detour exists
      EXPECT_GE(in, 0);
      EXPECT_LT(in, t.num_nodes());
      EXPECT_NE(in, s);
      EXPECT_NE(in, d);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllTopologies, TopologyContract,
                         ::testing::ValuesIn(kCases),
                         [](const ::testing::TestParamInfo<TopoCase>& info) {
                           return std::string(info.param.label);
                         });

}  // namespace
}  // namespace prdrb
