#include <set>

#include <gtest/gtest.h>

#include "net/dragonfly.hpp"
#include "routing/adaptive.hpp"
#include "routing/drb.hpp"
#include "routing/fr_drb.hpp"
#include "routing/oblivious.hpp"
#include "routing/ugal.hpp"
#include "test_util.hpp"

namespace prdrb {
namespace {

using test::Harness;

Packet make_packet(NodeId src, NodeId dst) {
  Packet p;
  p.source = src;
  p.destination = dst;
  p.size_bytes = 1024;
  return p;
}

TEST(Zones, ClassificationAgainstThresholds) {
  EXPECT_EQ(classify_zone(1e-6, 5e-6, 10e-6), Zone::kLow);
  EXPECT_EQ(classify_zone(7e-6, 5e-6, 10e-6), Zone::kMedium);
  EXPECT_EQ(classify_zone(11e-6, 5e-6, 10e-6), Zone::kHigh);
  EXPECT_EQ(classify_zone(5e-6, 5e-6, 10e-6), Zone::kMedium);   // inclusive
  EXPECT_EQ(classify_zone(10e-6, 5e-6, 10e-6), Zone::kMedium);  // inclusive
  EXPECT_STREQ(zone_name(Zone::kHigh), "high");
}

TEST(Metapath, MpLatencyFollowsEq34) {
  Metapath mp;
  mp.paths.push_back(Msp{kInvalidNode, kInvalidNode, 10e-6, 1});
  mp.update_mp_latency();
  EXPECT_DOUBLE_EQ(mp.mp_latency, 10e-6);
  mp.paths.push_back(Msp{1, 2, 10e-6, 1});
  mp.update_mp_latency();
  // Two equal paths: aggregate halves (capacity doubles).
  EXPECT_DOUBLE_EQ(mp.mp_latency, 5e-6);
}

TEST(Metapath, NoteFlowsDedupsAndBounds) {
  Metapath mp;
  const ContendingFlow a[] = {{1, 2}, {3, 4}};
  const ContendingFlow b[] = {{1, 2}, {5, 6}};
  const ContendingFlow c[] = {{7, 8}};
  mp.note_flows(a, 3);
  mp.note_flows(b, 3);
  EXPECT_EQ(mp.recent_flows.size(), 3u);
  // Most recent first.
  EXPECT_EQ(mp.recent_flows.front(), (ContendingFlow{5, 6}));
  mp.note_flows(c, 3);
  EXPECT_EQ(mp.recent_flows.size(), 3u);  // capped
}

TEST(Deterministic, SamePairAlwaysSamePort) {
  auto* pol = new DeterministicPolicy;
  auto h = Harness::make<KAryNTree>(NetConfig{}, pol, 4, 3);
  const Packet p = make_packet(3, 60);
  std::vector<int> cands{4, 5, 6, 7};
  const int first = pol->select_port(0, p, cands);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(pol->select_port(0, p, cands), first);
}

TEST(Deterministic, DifferentDestinationsSpreadOverUpPorts) {
  auto* pol = new DeterministicPolicy;
  auto h = Harness::make<KAryNTree>(NetConfig{}, pol, 4, 3);
  std::vector<int> cands{4, 5, 6, 7};
  std::set<int> used;
  for (NodeId d = 0; d < 64; d += 3) {
    used.insert(pol->select_port(0, make_packet(0, d), cands));
  }
  EXPECT_GT(used.size(), 1u);
}

TEST(Cyclic, StableWithinPeriodRotatesAcrossPeriods) {
  auto* pol = new CyclicPolicy(1e-3);
  auto h = Harness::make<Mesh2D>(NetConfig{}, pol, 4, 4);
  const Packet p = make_packet(0, 15);
  std::vector<int> cands{0, 2};
  const int first = pol->select_port(5, p, cands);
  EXPECT_EQ(pol->select_port(5, p, cands), first);  // same period
  int later = -1;
  h.sim.schedule_in(1.5e-3, [&] { later = pol->select_port(5, p, cands); });
  h.sim.run();
  EXPECT_NE(later, first);  // next period: rotated
  EXPECT_TRUE(later == 0 || later == 2);
}

TEST(Random, StaysWithinCandidates) {
  auto* pol = new RandomPolicy(3);
  auto h = Harness::make<Mesh2D>(NetConfig{}, pol, 4, 4);
  const Packet p = make_packet(0, 15);
  std::vector<int> cands{0, 2};
  std::set<int> seen;
  for (int i = 0; i < 64; ++i) seen.insert(pol->select_port(5, p, cands));
  EXPECT_EQ(seen, (std::set<int>{0, 2}));
}

TEST(Adaptive, PicksLeastOccupiedPort) {
  auto* pol = new AdaptivePolicy;
  auto h = Harness::make<Mesh2D>(NetConfig{}, pol, 4, 4);
  // Saturate the east port of router 0 by sending several packets 0->3;
  // while they queue, a packet to (1,1) should prefer the empty north port.
  for (int i = 0; i < 8; ++i) h.net->send_message(0, 3, 1024);
  h.sim.run_until(6e-6);  // mid-flight: queue at router 0 east port is busy
  std::vector<int> cands{Mesh2D::kEast, Mesh2D::kNorth};
  const Packet p = make_packet(0, 5);
  EXPECT_EQ(pol->select_port(0, p, cands), Mesh2D::kNorth);
  h.sim.run();
}

// ---------------------------------------------------------------------------
// DRB mechanics, driven by synthetic ACKs.

Packet make_ack(NodeId src, NodeId dst, SimTime e2e, int msp_index) {
  // ACK as it arrives back at `src` for a message it sent to `dst`.
  Packet ack;
  ack.type = PacketType::kAck;
  ack.source = dst;
  ack.destination = src;
  ack.msp_index = msp_index;
  ack.reported_e2e = e2e;
  ack.reported_latency = e2e / 2;
  return ack;
}

struct DrbFixture : ::testing::Test {
  DrbFixture() {
    DrbConfig cfg;
    cfg.threshold_low = 6e-6;
    cfg.threshold_high = 12e-6;
    cfg.max_paths = 4;
    policy = new DrbPolicy(cfg, 5);
    h = Harness::make<Mesh2D>(NetConfig{}, policy, 8, 8);
  }
  DrbPolicy* policy = nullptr;
  Harness h;
};

TEST_F(DrbFixture, StartsWithDirectPathOnly) {
  const PathChoice pc = policy->choose_path(0, 7, 0);
  EXPECT_TRUE(pc.direct());
  EXPECT_EQ(policy->open_paths(0, 7), 1);
}

TEST_F(DrbFixture, HighLatencyAcksOpenPathsGradually) {
  policy->choose_path(0, 7, 0);
  // Each congested ACK reports on the newest path, which both keeps the
  // aggregate in the High zone and completes that path's evaluation — so
  // DRB opens exactly one further path per evaluated ACK (§4.5.1).
  std::vector<int> trajectory;
  for (int i = 0; i < 8; ++i) {
    policy->on_ack(0, make_ack(0, 7, 50e-6, policy->open_paths(0, 7) - 1), 0);
    trajectory.push_back(policy->open_paths(0, 7));
  }
  EXPECT_EQ(trajectory[0], 2);  // one path at a time
  EXPECT_EQ(trajectory[1], 3);
  EXPECT_EQ(trajectory[2], 4);
  EXPECT_EQ(policy->open_paths(0, 7), 4);  // capped at max_paths
  EXPECT_GE(policy->total_expansions(), 3u);
}

TEST_F(DrbFixture, ExpansionWaitsForEvaluation) {
  policy->choose_path(0, 7, 0);
  policy->on_ack(0, make_ack(0, 7, 50e-6, 0), 0);
  ASSERT_EQ(policy->open_paths(0, 7), 2);
  // Further congested ACKs on the *old* path do not trigger more openings
  // until the new path's effect is evaluated (quorum not reached).
  for (int i = 0; i < DrbPolicy::kEvaluationQuorum - 2; ++i) {
    policy->on_ack(0, make_ack(0, 7, 50e-6, 0), 0);
    EXPECT_EQ(policy->open_paths(0, 7), 2);
  }
  // Quorum reached: evaluation complete, next High ACK expands again.
  policy->on_ack(0, make_ack(0, 7, 50e-6, 0), 0);
  policy->on_ack(0, make_ack(0, 7, 50e-6, 0), 0);
  EXPECT_EQ(policy->open_paths(0, 7), 3);
}

TEST_F(DrbFixture, LowLatencyAcksClosePaths) {
  policy->choose_path(0, 7, 0);
  for (int i = 0; i < 4; ++i) {
    policy->on_ack(0, make_ack(0, 7, 50e-6, policy->open_paths(0, 7) - 1), 0);
  }
  ASSERT_EQ(policy->open_paths(0, 7), 4);
  // Fast ACKs on every path drag the estimates down; aggregate falls below
  // Threshold_Low and DRB closes alternatives one at a time.
  for (int round = 0; round < 40 && policy->open_paths(0, 7) > 1; ++round) {
    for (int i = 0; i < policy->open_paths(0, 7); ++i) {
      policy->on_ack(0, make_ack(0, 7, 4e-6, i), 0);
    }
  }
  EXPECT_EQ(policy->open_paths(0, 7), 1);
  EXPECT_GT(policy->total_contractions(), 0u);
}

TEST_F(DrbFixture, DirectPathNeverClosed) {
  policy->choose_path(0, 7, 0);
  for (int i = 0; i < 10; ++i) policy->on_ack(0, make_ack(0, 7, 1e-6, 0), 0);
  const Metapath* mp = policy->find_metapath(0, 7);
  ASSERT_NE(mp, nullptr);
  ASSERT_GE(mp->paths.size(), 1u);
  EXPECT_TRUE(mp->paths[0].direct());
}

TEST_F(DrbFixture, PathSelectionFavoursFasterPaths) {
  policy->choose_path(0, 7, 0);
  for (int i = 0; i < 1; ++i) policy->on_ack(0, make_ack(0, 7, 50e-6, 0), 0);
  ASSERT_EQ(policy->open_paths(0, 7), 2);
  // Make path 0 fast and path 1 slow, keeping the aggregate in the medium
  // band so the path count stays put.
  for (int i = 0; i < 30; ++i) {
    policy->on_ack(0, make_ack(0, 7, 9e-6, 0), 0);
    policy->on_ack(0, make_ack(0, 7, 60e-6, 1), 0);
  }
  int fast = 0;
  int slow = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const auto idx = policy->choose_path(0, 7, 0).msp_index;
    if (idx == 0) ++fast;
    if (idx == 1) ++slow;
  }
  // Eq. 3.6 weights by inverse latency: the 9 us path must draw several
  // times the traffic of the 60 us path.
  EXPECT_GT(fast, 3 * slow);
}

TEST_F(DrbFixture, EwmaSmoothsLatencyEstimates) {
  policy->choose_path(0, 7, 0);
  policy->on_ack(0, make_ack(0, 7, 10e-6, 0), 0);
  const Metapath* mp = policy->find_metapath(0, 7);
  ASSERT_NE(mp, nullptr);
  EXPECT_DOUBLE_EQ(mp->paths[0].latency, 10e-6);  // first sample taken as-is
  policy->on_ack(0, make_ack(0, 7, 20e-6, 0), 0);
  EXPECT_GT(mp->paths[0].latency, 10e-6);
  EXPECT_LT(mp->paths[0].latency, 20e-6);
}

TEST_F(DrbFixture, AckFlowsAreAccumulated) {
  policy->choose_path(0, 7, 0);
  Packet ack = make_ack(0, 7, 8e-6, 0);
  ack.contending = {{1, 7}, {2, 7}};
  policy->on_ack(0, ack, 0);
  const Metapath* mp = policy->find_metapath(0, 7);
  ASSERT_NE(mp, nullptr);
  EXPECT_EQ(mp->recent_flows.size(), 2u);
}

TEST_F(DrbFixture, StaleMspIndexIgnored) {
  policy->choose_path(0, 7, 0);
  policy->on_ack(0, make_ack(0, 7, 8e-6, 7), 0);  // index out of range
  EXPECT_EQ(policy->open_paths(0, 7), 1);
}

TEST_F(DrbFixture, ReExpansionAfterShrinkIsAllocationFree) {
  policy->choose_path(0, 7, 0);
  const auto expand_all = [&] {
    for (int i = 0; i < 8 && policy->open_paths(0, 7) < 4; ++i) {
      policy->on_ack(0, make_ack(0, 7, 50e-6, policy->open_paths(0, 7) - 1),
                     0);
    }
  };
  const auto shrink_all = [&] {
    for (int round = 0; round < 40 && policy->open_paths(0, 7) > 1; ++round) {
      for (int i = 0; i < policy->open_paths(0, 7); ++i) {
        policy->on_ack(0, make_ack(0, 7, 4e-6, i), 0);
      }
    }
  };
  expand_all();
  ASSERT_EQ(policy->open_paths(0, 7), 4);
  shrink_all();
  ASSERT_EQ(policy->open_paths(0, 7), 1);
  // Full contraction rewound the candidate cursor but kept every buffer's
  // capacity: paths covers max_paths, the metapath's pending ring buffer
  // covers the largest ring the append-style msp_candidates walked, the
  // trend window is full. The whole next congestion episode must therefore
  // run without touching the heap.
  test::AllocationScope scope;
  expand_all();
  EXPECT_EQ(policy->open_paths(0, 7), 4);
  EXPECT_EQ(scope.count(), 0u) << "DRB re-expansion must not allocate";
}

TEST(PathEnumeration, WarmAppendBuffersAreAllocationFree) {
  Dragonfly df(4, 9, 2, 4);
  const NodeId src = 5;
  const NodeId dst = 100;
  std::vector<int> ports;
  std::vector<MspCandidate> cands;
  // Warm pass without clearing sizes each buffer past any single-ring or
  // single-router enumeration below.
  for (int ring = 1; ring <= df.g(); ++ring) {
    df.msp_candidates(src, dst, ring, cands);
  }
  for (RouterId r = 0; r < df.num_routers(); ++r) {
    df.minimal_ports(r, dst, ports);
  }
  test::AllocationScope scope;
  for (int ring = 1; ring <= df.g(); ++ring) {
    cands.clear();
    df.msp_candidates(src, dst, ring, cands);
  }
  for (RouterId r = 0; r < df.num_routers(); ++r) {
    ports.clear();
    df.minimal_ports(r, dst, ports);
  }
  EXPECT_EQ(scope.count(), 0u) << "append-style enumeration must not allocate";
}

TEST(Ugal, InjectionDecisionIsAllocationFree) {
  auto* pol = new UgalPolicy;
  auto h = Harness::make<Dragonfly>(NetConfig{}, pol, 4, 9, 2, 4);
  pol->choose_path(0, 100, 0);  // warm the first-hop queue scratch
  test::AllocationScope scope;
  for (NodeId s = 0; s < 36; ++s) {
    const PathChoice pc = pol->choose_path(s, (s + 16) % 144, 0);
    (void)pc;
  }
  EXPECT_EQ(scope.count(), 0u) << "UGAL's injection decision must not allocate";
}

TEST(FrDrb, WatchdogOpensPathWithoutAck) {
  DrbConfig cfg;
  FrDrbConfig fr;
  fr.watchdog_timeout = 10e-6;
  auto* pol = new FrDrbPolicy(cfg, fr, 5);
  auto h = Harness::make<Mesh2D>(NetConfig{}, pol, 8, 8);
  // Simulate a sent message whose ACK never arrives.
  pol->choose_path(0, 7, 0);
  pol->on_message_sent(0, 7, 77, {}, 0);
  h.sim.run();
  EXPECT_EQ(pol->watchdog_fires(), 1u);
  EXPECT_EQ(pol->open_paths(0, 7), 2);
}

TEST(FrDrb, AckCancelsWatchdog) {
  DrbConfig cfg;
  FrDrbConfig fr;
  fr.watchdog_timeout = 10e-6;
  auto* pol = new FrDrbPolicy(cfg, fr, 5);
  auto h = Harness::make<Mesh2D>(NetConfig{}, pol, 8, 8);
  pol->choose_path(0, 7, 0);
  pol->on_message_sent(0, 7, 77, {}, 0);
  h.sim.schedule_in(2e-6, [&] {
    Packet ack = make_ack(0, 7, 4e-6, 0);
    ack.acked_message_id = 77;
    pol->on_ack(0, ack, h.sim.now());
  });
  h.sim.run();
  EXPECT_EQ(pol->watchdog_fires(), 0u);
  EXPECT_EQ(pol->open_paths(0, 7), 1);
}

}  // namespace
}  // namespace prdrb
