// Hot-spot walkthrough: watch DRB open alternative multi-step paths while a
// scripted hot-spot (thesis §4.5) saturates a mesh, and compare the outcome
// against deterministic XY routing.
//
//   ./build/examples/hotspot_adaptive
#include <iostream>

#include "metrics/collector.hpp"
#include "net/mesh2d.hpp"
#include "net/network.hpp"
#include "routing/drb.hpp"
#include "routing/oblivious.hpp"
#include "sim/simulator.hpp"
#include "traffic/hotspot.hpp"
#include "traffic/source.hpp"
#include "util/table.hpp"

using namespace prdrb;

namespace {

struct Run {
  double global_latency_us;
  double map_peak_us;
};

Run simulate(RoutingPolicy& policy, DrbPolicy* drb) {
  Simulator sim;
  Mesh2D mesh(8, 8);
  NetConfig cfg;
  Network net(sim, mesh, cfg, policy);
  MetricsCollector metrics(64, 64);
  net.set_observer(&metrics);

  const HotspotPattern pattern = make_mesh_cross_hotspot(mesh, 8);
  TrafficConfig tc;
  tc.rate_bps = 1000e6;
  tc.stop = 4e-3;
  TrafficGenerator gen(sim, net, pattern, tc, 5, pattern.sources());
  gen.start();

  if (drb) {
    // Sample the metapath of the first flow while the simulation runs.
    const auto [fs, fd] = pattern.flows().front();
    std::cout << "\npath opening for flow " << fs << " -> " << fd << ":\n";
    for (int i = 1; i <= 8; ++i) {
      sim.schedule_at(i * 0.5e-3, [&, i] {
        const Metapath* mp = drb->find_metapath(fs, fd);
        std::cout << "  t=" << i * 0.5 << " ms: " << (mp ? mp->paths.size() : 1)
                  << " open path(s)";
        if (mp) {
          for (const Msp& path : mp->paths) {
            if (path.direct()) {
              std::cout << "  [direct]";
            } else {
              std::cout << "  [via " << path.in1;
              if (path.in2 != kInvalidNode) std::cout << "," << path.in2;
              std::cout << "]";
            }
          }
        }
        std::cout << '\n';
      });
    }
  }
  sim.run();
  return Run{metrics.global_average_latency() * 1e6,
             metrics.contention_map().peak() * 1e6};
}

}  // namespace

int main() {
  std::cout << "Hot-spot on an 8x8 mesh: 8 west-edge sources cross the "
               "east column (shared trajectory).\n";

  DeterministicPolicy det;
  const Run r_det = simulate(det, nullptr);

  DrbPolicy drb;
  const Run r_drb = simulate(drb, &drb);

  Table t({"policy", "global_latency_us", "map_peak_us"});
  t.add_row({"deterministic-XY", Table::num(r_det.global_latency_us, 4),
             Table::num(r_det.map_peak_us, 4)});
  t.add_row({"drb", Table::num(r_drb.global_latency_us, 4),
             Table::num(r_drb.map_peak_us, 4)});
  std::cout << '\n';
  t.print(std::cout);
  std::cout << "\nDRB distributed the colliding flows over multi-step paths "
               "(intermediate nodes shown above), flattening the hot spot.\n";
  return 0;
}
