// Application trace replay: generate a synthetic Parallel Ocean Program
// logical trace, replay it over the simulated fat tree under PR-DRB, and
// report execution time, per-rank blocking (the Fig. 2.7 imbalance) and the
// predictive module's learning statistics.
//
//   ./build/examples/trace_replay [app] [policy]
//   app    in {pop, nas-lu, nas-mg-a, nas-mg-b, lammps-chain, lammps-comb,
//             sweep3d}           (default pop)
//   policy in {deterministic, drb, pr-drb}   (default pr-drb)
#include <algorithm>
#include <fstream>
#include <iostream>
#include <memory>

#include "core/pr_drb.hpp"
#include "metrics/collector.hpp"
#include "net/kary_ntree.hpp"
#include "net/network.hpp"
#include "routing/oblivious.hpp"
#include "sim/simulator.hpp"
#include "trace/generators.hpp"
#include "trace/player.hpp"
#include "util/table.hpp"

using namespace prdrb;

int main(int argc, char** argv) {
  const std::string app = argc > 1 ? argv[1] : "pop";
  const std::string policy_name = argc > 2 ? argv[2] : "pr-drb";

  Simulator sim;
  KAryNTree topo(4, 3);
  NetConfig cfg;

  std::unique_ptr<RoutingPolicy> policy;
  PrDrbPolicy* pr = nullptr;
  if (policy_name == "deterministic") {
    policy = std::make_unique<DeterministicPolicy>();
  } else if (policy_name == "drb") {
    policy = std::make_unique<DrbPolicy>();
  } else {
    auto p = std::make_unique<PrDrbPolicy>();
    pr = p.get();
    policy = std::move(p);
  }

  Network net(sim, topo, cfg, *policy);
  CongestionDetector cfd(NotificationMode::kDestinationBased);
  if (pr) {
    net.set_monitor(&cfd);
    // Warm start from a previous run's exported database, if present.
    std::ifstream in("prdrb_solutions_" + app + ".txt");
    if (in) {
      const std::size_t n = pr->engine().db().import_text(in);
      std::cout << "warm start: imported " << n
                << " saved solutions from a previous run (§5.2 static "
                   "variation)\n";
    }
  }
  MetricsCollector metrics(topo.num_nodes(), topo.num_routers());
  net.set_observer(&metrics);

  TraceScale scale;
  scale.iterations = 8;
  scale.bytes_scale = 8.0;
  scale.compute_scale = 0.5;
  const TraceProgram prog = make_app_trace(app, topo.num_nodes(), scale);
  std::cout << "replaying " << prog.app_name() << " (" << prog.ranks()
            << " ranks, " << prog.total_events() << " trace events) under "
            << policy->name() << "\n";

  TracePlayer player(sim, net, prog);
  player.start();
  sim.run();

  if (!player.finished()) {
    std::cerr << "trace did not complete!\n";
    return 1;
  }
  std::cout << "execution time    : " << player.execution_time() * 1e3
            << " ms\n"
            << "messages sent     : " << player.messages_sent() << "\n"
            << "global avg latency: " << metrics.global_average_latency() * 1e6
            << " us\n"
            << "contention peak   : " << metrics.contention_map().peak() * 1e6
            << " us\n";

  // Communication imbalance: which ranks idled the most (Fig. 2.7's red
  // bars), as a fraction of the run.
  std::vector<std::pair<double, int>> blocked;
  for (int r = 0; r < prog.ranks(); ++r) {
    blocked.emplace_back(player.rank_blocked(r), r);
  }
  std::sort(blocked.rbegin(), blocked.rend());
  Table t({"rank", "blocked_ms", "% of runtime"});
  for (int i = 0; i < 5; ++i) {
    t.add_row({std::to_string(blocked[static_cast<std::size_t>(i)].second),
               Table::num(blocked[static_cast<std::size_t>(i)].first * 1e3, 4),
               Table::num(100.0 * blocked[static_cast<std::size_t>(i)].first /
                              player.execution_time(), 3)});
  }
  std::cout << "\nmost-blocked ranks (communication imbalance):\n";
  t.print(std::cout);

  if (pr) {
    const auto& db = pr->engine().db();
    std::cout << "\npredictive module: " << db.size()
              << " congestion patterns saved, " << db.reused_patterns()
              << " re-identified, best solution re-applied " << db.max_reuse()
              << " time(s); " << cfd.detections()
              << " router congestion detections.\n";
    // Offline / static variation (thesis §5.2): persist the learned
    // solutions so a future run starts warm. Re-run this example and the
    // database below is pre-loaded before the first message.
    const std::string db_file = "prdrb_solutions_" + app + ".txt";
    std::ofstream out(db_file);
    db.export_text(out);
    std::cout << "solution database exported to " << db_file
              << " (delete it for a cold start).\n";
  }
  return 0;
}
