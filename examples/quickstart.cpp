// Quickstart: simulate a 64-node fat tree under uniform traffic with the
// PR-DRB routing policy and print the headline metrics.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "core/pr_drb.hpp"
#include "metrics/collector.hpp"
#include "net/kary_ntree.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "traffic/source.hpp"

int main() {
  using namespace prdrb;

  // 1. The discrete-event kernel everything schedules against.
  Simulator sim;

  // 2. A topology: 4-ary 3-tree = 64 terminals, 48 switches.
  KAryNTree topo(4, 3);

  // 3. The routing policy. PR-DRB = DRB metapaths + the predictive layer
  //    (solution database keyed by contending-flow signatures).
  PrDrbPolicy policy;

  // 4. The network model: 2 Gb/s links, 1024 B packets, 2 MB buffers —
  //    the defaults follow the paper's Tables 4.2/4.3.
  NetConfig cfg;
  Network net(sim, topo, cfg, policy);

  // 5. Router-side congestion detection (the CFD module) feeding the
  //    predictive layer, and a metrics observer.
  CongestionDetector cfd(NotificationMode::kDestinationBased);
  net.set_monitor(&cfd);
  MetricsCollector metrics(topo.num_nodes(), topo.num_routers());
  net.set_observer(&metrics);

  // 6. Drive it: every node injects 1 KiB messages at 400 Mb/s to uniform
  //    random destinations for 5 ms.
  UniformPattern pattern(topo.num_nodes());
  TrafficConfig tc;
  tc.rate_bps = 400e6;
  tc.stop = 5e-3;
  TrafficGenerator gen(sim, net, pattern, tc, /*seed=*/42);
  gen.start();

  sim.run();

  std::cout << "delivered packets : " << metrics.packets_delivered() << "\n"
            << "offered/accepted  : " << metrics.bytes_offered() << " / "
            << metrics.bytes_accepted() << " bytes (ratio "
            << metrics.delivery_ratio() << ")\n"
            << "global avg latency: " << metrics.global_average_latency() * 1e6
            << " us (Eq. 4.2)\n"
            << "contention peak   : " << metrics.contention_map().peak() * 1e6
            << " us at the hottest router\n"
            << "congestion events : " << cfd.detections()
            << " (router threshold " << cfg.router_contention_threshold_s * 1e6
            << " us)\n"
            << "solutions saved   : " << policy.engine().db().size() << "\n";
  return 0;
}
