// prdrb_sim — command-line simulation driver over the experiment harness.
//
// Run any topology / policy / workload combination without writing code:
//
//   ./build/examples/prdrb_sim --topology mesh-8x8 --policy pr-drb \
//       --pattern hotspot-cross --rate 1000e6 --bursts 5 --seeds 3
//   ./build/examples/prdrb_sim --topology tree-64 --policy drb --app pop
//   ./build/examples/prdrb_sim --help
#include <chrono>
#include <cstring>
#include <iostream>
#include <string>

#include "experiment/manifest.hpp"
#include "sim/event_queue.hpp"
#include "experiment/runner.hpp"
#include "experiment/scenario.hpp"
#include "obs/counters.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/json.hpp"
#include "obs/scorecard.hpp"
#include "obs/stream.hpp"
#include "obs/telemetry.hpp"
#include "obs/tracer.hpp"
#include "util/table.hpp"

using namespace prdrb;

namespace {

void usage() {
  std::cout <<
      R"(prdrb_sim — PR-DRB interconnection-network simulator

options (synthetic traffic):
  --topology <name>   mesh-WxH | torus-WxH | tree-{16,32,64,256} | kary-K-N |
                      dragonfly-A:G:H:P (A routers/group, G groups, H global
                      links/router, P terminals/router; default tree-64)
  --policy <name>     deterministic | random | cyclic | adaptive | minimal |
                      valiant | ugal-l | drb | fr-drb | pr-drb | pr-fr-drb
                      (append @router for router-based notification;
                      default pr-drb)
  --pattern <name>    uniform | bit-reversal | perfect-shuffle |
                      matrix-transpose | bit-complement | tornado |
                      neighbor | butterfly | hotspot-cross | hotspot-double |
                      adversarial-group (dragonfly only: next-group shift)
  --rate <bps>        per-node injection rate (default 400e6)
  --duration <s>      simulated seconds (default 10e-3)
  --bursts <n>        bursty injection: n bursts of --burst-len (default 0
                      = continuous)
  --burst-len <s>     burst length (default 2e-3)
  --gap <s>           gap between bursts (default 2e-3)
  --noise <bps>       uniform background load (default 0)
  --seeds <n>         replicated runs, reported mean ± 95% CI (default 1)
  --seed <v>          base seed (default 11)
  --sched <name>      event-scheduler backend: heap | calendar | auto
                      (auto picks by expected pending-event scale; default
                      PRDRB_SCHED env, else heap; results are identical)
  --jobs <n>          parallel sweep workers for replicated runs (default
                      PRDRB_JOBS env, else hardware concurrency; results
                      are identical at any worker count)

options (application trace; overrides --pattern):
  --app <name>        pop | nas-lu | nas-mg-{s,a,b} | nas-ft-{a,b} |
                      lammps-{chain,comb} | sweep3d | smg2000
  --iterations <n>    trace time steps (default 8)
  --bytes-scale <f>   message-volume multiplier (default 1.0)
  --compute-scale <f> compute-time multiplier (default 1.0)

solution database (DESIGN.md "Indexed solution database"):
  --sdb-in <path>       warm-start predictive policies from a previously
                        exported solution database ("prdrb-sdb-v1" or the
                        legacy headerless text) before any traffic flows
  --sdb-out <path>      export the base-seed run's solution database after
                        the run; deterministic sorted text, byte-identical
                        across repeats, --jobs values and schedulers
  --sdb-capacity <n>    bound the database to n solutions with LRU
                        eviction (default 0 = unbounded)

observability (DESIGN.md "Observability"):
  --trace-out <path>    write a Chrome trace_event JSON (open in Perfetto)
                        of a serial, base-seed run
  --metrics-out <path>  export the counter registry (.csv -> CSV, else JSON)
  --telemetry-out <path> export link/router spatial telemetry (.csv -> CSV,
                        else "prdrb-telemetry-v1" JSON)
  --heatmap-out <path>  per-router heatmap (.pgm -> time x router image,
                        else topology-aware ASCII)
  --scorecard-out <path> predictive-efficacy scorecard: latency attribution,
                        metapath ledger and warm-vs-cold SDB episodes
                        ("prdrb-scorecard-v1" JSON) of a serial base-seed run
  --stream-out <path>   bounded-memory streaming telemetry: periodic
                        "prdrb-stream-v1" NDJSON snapshots (utilization
                        quantiles, congestion onsets, prediction lead times)
                        of a serial base-seed run, closed by a summary line
  --stream-interval <s> snapshot cadence in simulated seconds (default 10e-3;
                        rounded to the counter-sampling grid)
  --watchdog[=<s>]      arm the stall watchdog (default window 5e-3 virtual
                        seconds): dumps ring + router snapshot to stderr if
                        no packet is delivered for a window while work is
                        pending
  --watchdog-out <path> also write the flight-recorder dump JSON there
  --manifest-out <path> run-manifest path (default prdrb_sim.manifest.json)
  --no-manifest         do not write a manifest
)";
}

double num_arg(int argc, char** argv, int& i) {
  if (i + 1 >= argc) throw std::invalid_argument("missing value");
  return std::stod(argv[++i]);
}

std::string str_arg(int argc, char** argv, int& i) {
  if (i + 1 >= argc) throw std::invalid_argument("missing value");
  return argv[++i];
}

}  // namespace

int main(int argc, char** argv) {
  ScenarioSpec sc;
  sc.topology = "tree-64";
  sc.synthetic().pattern = "uniform";
  sc.synthetic().duration = 10e-3;
  sc.synthetic().bursts = 0;
  std::string policy = "pr-drb";
  std::string sched;
  std::string app;
  TraceScale scale;
  int seeds = 1;
  std::string trace_out;
  std::string metrics_out;
  std::string telemetry_out;
  std::string heatmap_out;
  std::string scorecard_out;
  std::string stream_out;
  double stream_interval = 0;
  double watchdog = 0;
  std::string watchdog_out;
  std::string manifest_out = "prdrb_sim.manifest.json";
  bool write_manifest = true;
  const auto wall_start = std::chrono::steady_clock::now();

  try {
    for (int i = 1; i < argc; ++i) {
      std::string a = argv[i];
      // Accept "--flag=value" as well as "--flag value", like the bench
      // binaries do.
      std::string inline_val;
      bool has_inline = false;
      if (a.rfind("--", 0) == 0) {
        if (const auto eq = a.find('='); eq != std::string::npos) {
          inline_val = a.substr(eq + 1);
          a = a.substr(0, eq);
          has_inline = true;
        }
      }
      const auto sval = [&]() -> std::string {
        return has_inline ? inline_val : str_arg(argc, argv, i);
      };
      const auto nval = [&]() -> double {
        return has_inline ? std::stod(inline_val) : num_arg(argc, argv, i);
      };
      if (a == "--help" || a == "-h") {
        usage();
        return 0;
      } else if (a == "--topology") {
        sc.topology = sval();
      } else if (a == "--policy") {
        policy = sval();
      } else if (a == "--pattern") {
        sc.synthetic().pattern = sval();
      } else if (a == "--rate") {
        sc.synthetic().rate_bps = nval();
      } else if (a == "--duration") {
        sc.synthetic().duration = nval();
      } else if (a == "--bursts") {
        sc.synthetic().bursts = static_cast<int>(nval());
      } else if (a == "--burst-len") {
        sc.synthetic().burst_len = nval();
      } else if (a == "--gap") {
        sc.synthetic().gap_len = nval();
      } else if (a == "--noise") {
        sc.synthetic().noise_rate_bps = nval();
      } else if (a == "--sched") {
        sched = sval();
      } else if (a == "--seeds") {
        seeds = static_cast<int>(nval());
      } else if (a == "--jobs") {
        set_default_jobs(static_cast<int>(nval()));
      } else if (a == "--seed") {
        sc.seed = static_cast<std::uint64_t>(nval());
      } else if (a == "--app") {
        app = sval();
      } else if (a == "--iterations") {
        scale.iterations = static_cast<int>(nval());
      } else if (a == "--bytes-scale") {
        scale.bytes_scale = nval();
      } else if (a == "--compute-scale") {
        scale.compute_scale = nval();
      } else if (a == "--sdb-in") {
        sc.sdb_in = sval();
      } else if (a == "--sdb-out") {
        sc.sdb_out = sval();
      } else if (a == "--sdb-capacity") {
        sc.prdrb.sdb_capacity = static_cast<std::size_t>(nval());
      } else if (a == "--trace-out") {
        trace_out = sval();
      } else if (a == "--metrics-out") {
        metrics_out = sval();
      } else if (a == "--telemetry-out") {
        telemetry_out = sval();
      } else if (a == "--heatmap-out") {
        heatmap_out = sval();
      } else if (a == "--scorecard-out") {
        scorecard_out = sval();
      } else if (a == "--stream-out") {
        stream_out = sval();
      } else if (a == "--stream-interval") {
        stream_interval = nval();
      } else if (a == "--watchdog") {
        watchdog = has_inline ? std::stod(inline_val) : 5e-3;
        if (!(watchdog > 0)) watchdog = 5e-3;
      } else if (a == "--watchdog-out") {
        watchdog_out = sval();
      } else if (a == "--manifest-out") {
        manifest_out = sval();
      } else if (a == "--no-manifest") {
        write_manifest = false;
      } else {
        std::cerr << "unknown option: " << a << "\n";
        usage();
        return 2;
      }
    }

    // Validate the name-shaped flags up front so a typo yields one typed
    // error (with a nearest-name suggestion) instead of a mid-run throw.
    if (const auto parsed = make_topology(sc.topology); !parsed.ok()) {
      std::cerr << "error: " << parsed.error().what() << "\n";
      return 2;
    }
    if (const auto parsed = make_policy(policy); !parsed.ok()) {
      std::cerr << "error: " << parsed.error().what() << "\n";
      return 2;
    }
    if (!sched.empty()) {
      if (const auto kind = parse_scheduler_name(sched)) {
        set_default_scheduler(*kind);
      } else {
        ParseError err;
        err.input = sched;
        err.kind = "scheduler";
        err.message = "unknown scheduler";
        err.suggestion = nearest_name(sched, {"heap", "calendar", "auto"});
        std::cerr << "error: " << err.what() << "\n";
        return 2;
      }
    }

    RunManifest manifest("prdrb_sim");
    manifest.set_seed(sc.seed);
    manifest.add_config("topology", sc.topology);
    manifest.add_config("policy", policy);
    manifest.add_config("sched",
                        std::string(scheduler_name(default_scheduler())));
    if (!sc.sdb_in.empty()) manifest.add_config("sdb_in", sc.sdb_in);
    if (!sc.sdb_out.empty()) manifest.add_config("sdb_out", sc.sdb_out);
    if (sc.prdrb.sdb_capacity > 0) {
      manifest.add_config(
          "sdb_capacity",
          static_cast<std::int64_t>(sc.prdrb.sdb_capacity));
    }
    const auto finish = [&](double) {
      const auto elapsed = std::chrono::steady_clock::now() - wall_start;
      manifest.set_wall_seconds(
          std::chrono::duration<double>(elapsed).count());
      manifest.set_jobs(default_jobs());
      if (write_manifest) manifest.write_file(manifest_out);
    };

    if (!app.empty()) {
      // Switching the workload alternative discards the synthetic knobs;
      // topology/seed/sinks live on the spec and carry over.
      sc.trace().app = app;
      sc.trace().scale = scale;
      // run_scenario on a trace workload is serial: the sinks can ride the
      // measured run itself.
      obs::Tracer tracer;
      obs::CounterRegistry counters(sc.bin_width);
      obs::NetTelemetry telemetry(sc.bin_width);
      obs::FlightRecorder recorder(512);
      obs::Scorecard scorecard;
      obs::StreamTelemetry stream;
      std::string dump;
      if (!trace_out.empty()) sc.sinks.tracer = &tracer;
      if (!metrics_out.empty()) sc.sinks.counters = &counters;
      if (!telemetry_out.empty() || !heatmap_out.empty()) {
        sc.sinks.telemetry = &telemetry;
      }
      if (!scorecard_out.empty()) sc.sinks.scorecard = &scorecard;
      if (!stream_out.empty()) {
        sc.sinks.stream = &stream;
        if (stream_interval > 0) sc.sinks.stream_interval = stream_interval;
      }
      if (watchdog > 0) {
        sc.sinks.recorder = &recorder;
        sc.sinks.watchdog_window = watchdog;
        sc.sinks.watchdog_dump = &dump;
      }
      const ScenarioResult r = run_scenario(policy, sc);
      if (!trace_out.empty()) tracer.write_file(trace_out);
      if (!metrics_out.empty()) counters.write_file(metrics_out);
      if (!telemetry_out.empty()) telemetry.write_file(telemetry_out);
      if (!heatmap_out.empty()) {
        telemetry.write_heatmap_file(
            heatmap_out, *make_topology(sc.topology).value_or_throw());
      }
      if (!scorecard_out.empty()) scorecard.write_file(scorecard_out);
      if (!stream_out.empty()) stream.write_file(stream_out);
      if (!watchdog_out.empty() && !dump.empty()) {
        obs::write_text_file(watchdog_out, dump);
      }
      manifest.add_config("app", app);
      manifest.add_result(r);
      finish(0);
      Table t({"metric", "value"});
      t.add_row({"policy", r.policy});
      t.add_row({"application", app});
      t.add_row({"execution time (ms)", Table::num(r.exec_time * 1e3, 5)});
      t.add_row({"global avg latency (us)",
                 Table::num(r.global_latency * 1e6, 5)});
      t.add_row({"contention map peak (us)", Table::num(r.map_peak * 1e6, 5)});
      t.add_row({"packets delivered", std::to_string(r.packets)});
      t.add_row({"path expansions", std::to_string(r.expansions)});
      t.add_row({"solution installs", std::to_string(r.installs)});
      t.add_row({"patterns saved", std::to_string(r.patterns_saved)});
      t.print(std::cout);
      return r.exec_time >= 0 ? 0 : 1;
    }

    const auto runs = run_synthetic_replicated(policy, sc, seeds);
    manifest.add_config("pattern", sc.synthetic().pattern);
    manifest.add_config("rate_bps", sc.synthetic().rate_bps);
    manifest.add_config("seeds", static_cast<std::int64_t>(seeds));
    for (const ScenarioResult& r : runs) manifest.add_result(r);
    // The replicated runs go through the parallel executor, so the
    // instrumented run is a separate serial probe at the base seed — its
    // trace bytes are independent of --jobs.
    if (!trace_out.empty() || !metrics_out.empty() || !telemetry_out.empty() ||
        !heatmap_out.empty() || !scorecard_out.empty() ||
        !stream_out.empty() || watchdog > 0) {
      ScenarioSpec probe = sc;
      // The replicated base-seed run already exported the database (only
      // the base seed writes it — workers must not race on the file).
      probe.sdb_out.clear();
      obs::Tracer tracer;
      obs::CounterRegistry counters(probe.bin_width);
      obs::NetTelemetry telemetry(probe.bin_width);
      obs::FlightRecorder recorder(512);
      obs::Scorecard scorecard;
      obs::StreamTelemetry stream;
      std::string dump;
      if (!trace_out.empty()) probe.sinks.tracer = &tracer;
      if (!metrics_out.empty()) probe.sinks.counters = &counters;
      if (!telemetry_out.empty() || !heatmap_out.empty()) {
        probe.sinks.telemetry = &telemetry;
      }
      if (!scorecard_out.empty()) probe.sinks.scorecard = &scorecard;
      if (!stream_out.empty()) {
        probe.sinks.stream = &stream;
        if (stream_interval > 0) {
          probe.sinks.stream_interval = stream_interval;
        }
      }
      if (watchdog > 0) {
        probe.sinks.recorder = &recorder;
        probe.sinks.watchdog_window = watchdog;
        probe.sinks.watchdog_dump = &dump;
      }
      run_scenario(policy, probe);
      if (!trace_out.empty()) tracer.write_file(trace_out);
      if (!metrics_out.empty()) counters.write_file(metrics_out);
      if (!telemetry_out.empty()) telemetry.write_file(telemetry_out);
      if (!heatmap_out.empty()) {
        telemetry.write_heatmap_file(
            heatmap_out, *make_topology(sc.topology).value_or_throw());
      }
      if (!scorecard_out.empty()) scorecard.write_file(scorecard_out);
      if (!stream_out.empty()) stream.write_file(stream_out);
      if (!watchdog_out.empty() && !dump.empty()) {
        obs::write_text_file(watchdog_out, dump);
      }
    }
    finish(0);
    const auto lat = replicate_metric(
        runs, [](const ScenarioResult& r) { return r.global_latency; });
    const auto peak = replicate_metric(
        runs, [](const ScenarioResult& r) { return r.map_peak; });
    Table t({"metric", "value"});
    t.add_row({"policy", runs.front().policy});
    t.add_row({"pattern", sc.synthetic().pattern});
    t.add_row({"seeds", std::to_string(seeds)});
    t.add_row({"global avg latency (us)",
               Table::num(lat.mean * 1e6, 5) + " ± " +
                   Table::num(lat.ci95() * 1e6, 3)});
    t.add_row({"contention map peak (us)",
               Table::num(peak.mean * 1e6, 5) + " ± " +
                   Table::num(peak.ci95() * 1e6, 3)});
    t.add_row({"packets delivered", std::to_string(runs.front().packets)});
    t.add_row({"delivery ratio",
               Table::num(runs.front().delivery_ratio, 6)});
    t.add_row({"path expansions", std::to_string(runs.front().expansions)});
    t.add_row({"solution installs", std::to_string(runs.front().installs)});
    t.print(std::cout);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
