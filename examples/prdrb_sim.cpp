// prdrb_sim — command-line simulation driver over the experiment harness.
//
// Run any topology / policy / workload combination without writing code:
//
//   ./build/examples/prdrb_sim --topology mesh-8x8 --policy pr-drb \
//       --pattern hotspot-cross --rate 1000e6 --bursts 5 --seeds 3
//   ./build/examples/prdrb_sim --topology tree-64 --policy drb --app pop
//   ./build/examples/prdrb_sim --help
#include <cstring>
#include <iostream>
#include <string>

#include "experiment/runner.hpp"
#include "experiment/scenario.hpp"
#include "util/table.hpp"

using namespace prdrb;

namespace {

void usage() {
  std::cout <<
      R"(prdrb_sim — PR-DRB interconnection-network simulator

options (synthetic traffic):
  --topology <name>   mesh-WxH | torus-WxH | tree-{16,32,64,256} | kary-K-N
                      (default tree-64)
  --policy <name>     deterministic | random | cyclic | adaptive | drb |
                      fr-drb | pr-drb | pr-fr-drb  (append @router for
                      router-based notification; default pr-drb)
  --pattern <name>    uniform | bit-reversal | perfect-shuffle |
                      matrix-transpose | bit-complement | tornado |
                      neighbor | butterfly | hotspot-cross | hotspot-double
  --rate <bps>        per-node injection rate (default 400e6)
  --duration <s>      simulated seconds (default 10e-3)
  --bursts <n>        bursty injection: n bursts of --burst-len (default 0
                      = continuous)
  --burst-len <s>     burst length (default 2e-3)
  --gap <s>           gap between bursts (default 2e-3)
  --noise <bps>       uniform background load (default 0)
  --seeds <n>         replicated runs, reported mean ± 95% CI (default 1)
  --seed <v>          base seed (default 11)
  --jobs <n>          parallel sweep workers for replicated runs (default
                      PRDRB_JOBS env, else hardware concurrency; results
                      are identical at any worker count)

options (application trace; overrides --pattern):
  --app <name>        pop | nas-lu | nas-mg-{s,a,b} | nas-ft-{a,b} |
                      lammps-{chain,comb} | sweep3d | smg2000
  --iterations <n>    trace time steps (default 8)
  --bytes-scale <f>   message-volume multiplier (default 1.0)
  --compute-scale <f> compute-time multiplier (default 1.0)
)";
}

double num_arg(int argc, char** argv, int& i) {
  if (i + 1 >= argc) throw std::invalid_argument("missing value");
  return std::stod(argv[++i]);
}

std::string str_arg(int argc, char** argv, int& i) {
  if (i + 1 >= argc) throw std::invalid_argument("missing value");
  return argv[++i];
}

}  // namespace

int main(int argc, char** argv) {
  SyntheticScenario sc;
  sc.topology = "tree-64";
  sc.pattern = "uniform";
  sc.duration = 10e-3;
  sc.bursts = 0;
  std::string policy = "pr-drb";
  std::string app;
  TraceScale scale;
  int seeds = 1;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (a == "--help" || a == "-h") {
        usage();
        return 0;
      } else if (a == "--topology") {
        sc.topology = str_arg(argc, argv, i);
      } else if (a == "--policy") {
        policy = str_arg(argc, argv, i);
      } else if (a == "--pattern") {
        sc.pattern = str_arg(argc, argv, i);
      } else if (a == "--rate") {
        sc.rate_bps = num_arg(argc, argv, i);
      } else if (a == "--duration") {
        sc.duration = num_arg(argc, argv, i);
      } else if (a == "--bursts") {
        sc.bursts = static_cast<int>(num_arg(argc, argv, i));
      } else if (a == "--burst-len") {
        sc.burst_len = num_arg(argc, argv, i);
      } else if (a == "--gap") {
        sc.gap_len = num_arg(argc, argv, i);
      } else if (a == "--noise") {
        sc.noise_rate_bps = num_arg(argc, argv, i);
      } else if (a == "--seeds") {
        seeds = static_cast<int>(num_arg(argc, argv, i));
      } else if (a == "--jobs") {
        set_default_jobs(static_cast<int>(num_arg(argc, argv, i)));
      } else if (a == "--seed") {
        sc.seed = static_cast<std::uint64_t>(num_arg(argc, argv, i));
      } else if (a == "--app") {
        app = str_arg(argc, argv, i);
      } else if (a == "--iterations") {
        scale.iterations = static_cast<int>(num_arg(argc, argv, i));
      } else if (a == "--bytes-scale") {
        scale.bytes_scale = num_arg(argc, argv, i);
      } else if (a == "--compute-scale") {
        scale.compute_scale = num_arg(argc, argv, i);
      } else {
        std::cerr << "unknown option: " << a << "\n";
        usage();
        return 2;
      }
    }

    if (!app.empty()) {
      TraceScenario ts;
      ts.topology = sc.topology;
      ts.app = app;
      ts.scale = scale;
      ts.seed = sc.seed;
      const ScenarioResult r = run_trace(policy, ts);
      Table t({"metric", "value"});
      t.add_row({"policy", r.policy});
      t.add_row({"application", app});
      t.add_row({"execution time (ms)", Table::num(r.exec_time * 1e3, 5)});
      t.add_row({"global avg latency (us)",
                 Table::num(r.global_latency * 1e6, 5)});
      t.add_row({"contention map peak (us)", Table::num(r.map_peak * 1e6, 5)});
      t.add_row({"packets delivered", std::to_string(r.packets)});
      t.add_row({"path expansions", std::to_string(r.expansions)});
      t.add_row({"solution installs", std::to_string(r.installs)});
      t.add_row({"patterns saved", std::to_string(r.patterns_saved)});
      t.print(std::cout);
      return r.exec_time >= 0 ? 0 : 1;
    }

    const auto runs = run_synthetic_replicated(policy, sc, seeds);
    const auto lat = replicate_metric(
        runs, [](const ScenarioResult& r) { return r.global_latency; });
    const auto peak = replicate_metric(
        runs, [](const ScenarioResult& r) { return r.map_peak; });
    Table t({"metric", "value"});
    t.add_row({"policy", runs.front().policy});
    t.add_row({"pattern", sc.pattern});
    t.add_row({"seeds", std::to_string(seeds)});
    t.add_row({"global avg latency (us)",
               Table::num(lat.mean * 1e6, 5) + " ± " +
                   Table::num(lat.ci95() * 1e6, 3)});
    t.add_row({"contention map peak (us)",
               Table::num(peak.mean * 1e6, 5) + " ± " +
                   Table::num(peak.ci95() * 1e6, 3)});
    t.add_row({"packets delivered", std::to_string(runs.front().packets)});
    t.add_row({"delivery ratio",
               Table::num(runs.front().delivery_ratio, 6)});
    t.add_row({"path expansions", std::to_string(runs.front().expansions)});
    t.add_row({"solution installs", std::to_string(runs.front().installs)});
    t.print(std::cout);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
