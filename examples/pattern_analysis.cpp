// Application characterization (thesis Ch. 2 / §4.7): extract the
// communication matrix, topological degree of communication, MPI call
// breakdown and phase repetitiveness from an application's logical trace —
// the analysis that decides whether an application can benefit from
// predictive routing.
//
//   ./build/examples/pattern_analysis [app]   (default lammps-chain)
#include <iostream>

#include "trace/analysis.hpp"
#include "trace/generators.hpp"
#include "util/table.hpp"

using namespace prdrb;

namespace {

/// ASCII rendering of the communication matrix (Figs. 2.10-2.13): one cell
/// per 4x4 rank block, darker glyph = more volume.
void render_matrix(const CommMatrix& m) {
  const char* shades = " .:-=+*#%@";
  std::int64_t max_cell = 1;
  const int step = std::max(1, m.ranks() / 32);
  for (int s = 0; s < m.ranks(); s += step) {
    for (int d = 0; d < m.ranks(); d += step) {
      std::int64_t v = 0;
      for (int i = s; i < std::min(s + step, m.ranks()); ++i) {
        for (int j = d; j < std::min(d + step, m.ranks()); ++j) {
          v += m.volume(i, j);
        }
      }
      max_cell = std::max(max_cell, v);
    }
  }
  for (int s = 0; s < m.ranks(); s += step) {
    for (int d = 0; d < m.ranks(); d += step) {
      std::int64_t v = 0;
      for (int i = s; i < std::min(s + step, m.ranks()); ++i) {
        for (int j = d; j < std::min(d + step, m.ranks()); ++j) {
          v += m.volume(i, j);
        }
      }
      const auto idx = static_cast<std::size_t>(
          9.0 * static_cast<double>(v) / static_cast<double>(max_cell));
      std::cout << shades[std::min<std::size_t>(idx, 9)];
    }
    std::cout << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string app = argc > 1 ? argv[1] : "lammps-chain";
  const int ranks = 64;
  TraceScale scale;
  scale.iterations = 8;
  const TraceProgram prog = make_app_trace(app, ranks, scale);

  std::cout << "=== " << prog.app_name() << " on " << ranks << " ranks ===\n";

  std::cout << "\ncommunication matrix (point-to-point volume, source rows "
               "x destination columns):\n";
  const CommMatrix p2p = CommMatrix::from_program(prog, false);
  render_matrix(p2p);

  std::cout << "\nwith collectives expanded into their message patterns:\n";
  const CommMatrix full = CommMatrix::from_program(prog, true);
  render_matrix(full);

  Table t({"metric", "value"});
  t.add_row({"avg TDC (p2p)", Table::num(p2p.avg_tdc(), 3)});
  t.add_row({"max TDC (p2p)", std::to_string(p2p.max_tdc())});
  t.add_row({"p2p volume (MB)",
             Table::num(static_cast<double>(p2p.total_volume()) / 1e6, 4)});
  t.add_row({"volume incl. collectives (MB)",
             Table::num(static_cast<double>(full.total_volume()) / 1e6, 4)});
  std::cout << '\n';
  t.print(std::cout);

  std::cout << "\nMPI call breakdown (Table 2.1 style):\n";
  Table b({"call", "%"});
  for (const auto& [name, pct] : prog.call_breakdown()) {
    b.add_row({name, Table::num(pct, 3)});
  }
  b.print(std::cout);

  const PhaseStats ps = phase_stats(prog);
  const DetectedPhases det = detect_phases(prog);  // auto window
  std::cout << "\nphase analysis (Table 2.2 style):\n";
  Table ph({"metric", "value"});
  ph.add_row({"total phases", std::to_string(ps.total_phases)});
  ph.add_row({"relevant phases", std::to_string(ps.relevant_phases)});
  ph.add_row({"weight (repetitions)", std::to_string(ps.total_weight)});
  ph.add_row({"detected repetitiveness", Table::num(det.repetitiveness, 3)});
  ph.add_row({"max repeated window", std::to_string(det.max_repeat)});
  ph.print(std::cout);

  std::cout << "\napplications with high repetitiveness and non-neighbour "
               "TDC benefit most from PR-DRB (thesis §2.2.6 conclusions).\n";
  return 0;
}
